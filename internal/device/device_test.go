package device

import (
	"math"
	"testing"

	"numaio/internal/topology"
)

func classRate(t *testing.T, engine string, node topology.NodeID) float64 {
	t.Helper()
	m := topology.DL585G7()
	spec, err := SpecFor(engine)
	if err != nil {
		t.Fatal(err)
	}
	dev := topology.NIC0
	if spec.Kind == topology.DeviceSSD {
		dev = topology.SSD0
	}
	bw, err := spec.ClassRate(m, dev, node)
	if err != nil {
		t.Fatal(err)
	}
	return bw.Gbps()
}

func TestSpecForUnknown(t *testing.T) {
	if _, err := SpecFor("warp_drive"); err == nil {
		t.Error("unknown engine should fail")
	}
}

func TestDirectionStrings(t *testing.T) {
	if ToDevice.String() != "to-device" || FromDevice.String() != "from-device" {
		t.Error("direction strings")
	}
	if Direction(9).String() == "" {
		t.Error("fallback string empty")
	}
}

func TestNodeLegDirections(t *testing.T) {
	m := topology.DL585G7()
	send, _ := SpecFor(EngineTCPSend)
	recv, _ := SpecFor(EngineTCPRecv)

	legSend, err := send.NodeLeg(m, topology.NIC0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// ToDevice: data flows node2 -> node7.
	if from := m.Link(legSend[0]).From; from != "node2" {
		t.Errorf("send leg starts at %s, want node2", from)
	}
	legRecv, err := recv.NodeLeg(m, topology.NIC0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if from := m.Link(legRecv[0]).From; from != "node7" {
		t.Errorf("recv leg starts at %s, want node7", from)
	}
	// Local buffer: empty leg.
	leg, err := send.NodeLeg(m, topology.NIC0, 7)
	if err != nil || len(leg) != 0 {
		t.Errorf("local leg = %v, %v", leg, err)
	}
	if _, err := send.NodeLeg(m, "nope", 2); err == nil {
		t.Error("unknown device should fail")
	}
	if _, err := send.NodeLeg(m, topology.SSD0, 2); err == nil {
		t.Error("kind mismatch should fail")
	}
}

// Table IV class rates (device write: data toward node 7).
func TestWriteModelClassRates(t *testing.T) {
	cases := []struct {
		engine   string
		paper    map[topology.NodeID]float64 // class averages from Table IV
		tolerant float64                     // relative tolerance
	}{
		{EngineRDMAWrite, map[topology.NodeID]float64{7: 23.3, 6: 23.3, 0: 23.2, 4: 23.2, 2: 17.1, 3: 17.1}, 0.08},
		{EngineSSDWrite, map[topology.NodeID]float64{7: 14.4, 6: 14.4, 0: 14.25, 4: 14.25, 2: 9.0, 3: 9.0}, 0.08},
	}
	for _, c := range cases {
		for node, want := range c.paper {
			got := classRate(t, c.engine, node)
			if rel := math.Abs(got-want) / want; rel > c.tolerant {
				t.Errorf("%s class rate node %d = %.2f, paper %.2f (off %.0f%%)",
					c.engine, node, got, want, rel*100)
			}
		}
	}
}

// Table V class rates (device read: data away from node 7).
func TestReadModelClassRates(t *testing.T) {
	// RDMA_READ: c1 {6,7}=22.0, c2 {2,3}=22.0, c3 {0,1,5}=18.3, c4 {4}=16.1.
	for node, want := range map[topology.NodeID]float64{
		7: 22.0, 6: 22.0, 2: 22.0, 3: 22.0, 0: 18.3, 1: 18.3, 5: 18.3, 4: 16.1,
	} {
		got := classRate(t, EngineRDMARead, node)
		if rel := math.Abs(got-want) / want; rel > 0.09 {
			t.Errorf("rdma_read class rate node %d = %.2f, paper %.2f", node, got, want)
		}
	}
	// SSD read per card: c1 ~17.35, c2 ~16.3, c3 ~15.05, c4 ~9.25.
	for node, want := range map[topology.NodeID]float64{
		7: 17.35, 6: 17.35, 0: 15.05, 1: 15.05, 5: 15.05, 4: 9.8,
	} {
		got := classRate(t, EngineSSDRead, node)
		if rel := math.Abs(got-want) / want; rel > 0.12 {
			t.Errorf("ssd_read class rate node %d = %.2f, want ~%.2f", node, got, want)
		}
	}
}

// The class orderings of Tables IV and V must hold strictly where the paper
// separates classes by a wide margin.
func TestClassOrderings(t *testing.T) {
	// Write model: {6,7,0,1,4,5} >> {2,3}.
	for _, engine := range []string{EngineTCPSend, EngineRDMAWrite, EngineRDMASend, EngineSSDWrite} {
		for _, hi := range []topology.NodeID{7, 6, 0, 1, 4, 5} {
			for _, lo := range []topology.NodeID{2, 3} {
				if a, b := classRate(t, engine, hi), classRate(t, engine, lo); !(a > b*1.1) {
					t.Errorf("%s: node %d (%.2f) should clearly beat node %d (%.2f)",
						engine, hi, a, lo, b)
				}
			}
		}
	}
	// Read model: {6,7,2,3} > {0,1,5} > {4}.
	for _, engine := range []string{EngineTCPRecv, EngineRDMARead, EngineSSDRead} {
		for _, mid := range []topology.NodeID{0, 1, 5} {
			if a, b := classRate(t, engine, mid), classRate(t, engine, 4); !(a > b*1.05) {
				t.Errorf("%s: node %d (%.2f) should beat node 4 (%.2f)", engine, mid, a, b)
			}
			for _, hi := range []topology.NodeID{7, 6} {
				if a, b := classRate(t, engine, hi), classRate(t, engine, mid); !(a >= b*0.99) {
					t.Errorf("%s: node %d (%.2f) should not lose to node %d (%.2f)",
						engine, hi, a, mid, b)
				}
			}
		}
	}
}

// The SatKnee floor keeps RDMA_READ from decaying proportionally on the
// starved 7→4 path: it must beat the pure path-efficiency bound there.
func TestRDMAReadSatFloor(t *testing.T) {
	m := topology.DL585G7()
	spec, _ := SpecFor(EngineRDMARead)
	got := classRate(t, EngineRDMARead, 4)
	leg, err := spec.NodeLeg(m, topology.NIC0, 4)
	if err != nil {
		t.Fatal(err)
	}
	proportional := spec.PathEfficiency * m.PathCapacity(leg).Gbps()
	if !(got > proportional*1.1) {
		t.Errorf("sat floor inactive: got %.2f, proportional bound %.2f", got, proportional)
	}
}

func TestDevicesOfKind(t *testing.T) {
	m := topology.DL585G7()
	nic, _ := SpecFor(EngineRDMAWrite)
	ssd, _ := SpecFor(EngineSSDRead)
	if got := nic.DevicesOfKind(m); len(got) != 1 || got[0].ID != topology.NIC0 {
		t.Errorf("NIC devices = %+v", got)
	}
	if got := ssd.DevicesOfKind(m); len(got) != 2 {
		t.Errorf("SSD devices = %+v", got)
	}
}

func TestClassRateUnknownNode(t *testing.T) {
	m := topology.DL585G7()
	spec, _ := SpecFor(EngineRDMAWrite)
	if _, err := spec.ClassRate(m, topology.NIC0, 42); err == nil {
		t.Error("unknown node should fail")
	}
}
