// Package device models the PCIe devices of the testbed (Fig. 2): the
// ConnectX-3 40 GbE RoCE adapter and the LSI Nytro WarpDrive SSDs, as seen
// by their DMA engines.
//
// Every engine (tcp_send, rdma_read, ssd_write, ...) is described by a small
// set of parameters:
//
//   - Ceiling: the protocol/device aggregate limit (e.g. ~21 Gb/s for TCP
//     after Ethernet/IP overhead on a 32 Gb/s PCIe Gen2 x8 adapter);
//   - PathEfficiency: what fraction of the NUMA node-to-node path bandwidth
//     the engine's DMA pattern can exploit — DMA bursts, doorbells and
//     acknowledgements keep bulk I/O well below raw link capacity, which is
//     why the paper's Tables IV/V I/O rows sit below the memcpy row;
//   - SatKnee: for credit-pipelined reads (RDMA_READ), a latency-bound floor
//     Ceiling·P/(P+K) that decays slower than proportionally on starved
//     paths;
//   - PerStreamHost: per-core processing rate for host-driven protocols
//     (TCP); zero for offloaded protocols (RDMA) and kernel-bypass disk I/O;
//   - IRQWeight: core capacity consumed on the device's local node per unit
//     of device throughput (interrupts are steered to the local node,
//     Sec. III-B2) — the reason node 6 often beats local node 7.
//
// The single-class achievable rate (ClassRate) feeds the weighted device
// engine resource in the fio engine, producing the harmonic multi-class
// aggregates of Sec. V-B.
package device

import (
	"fmt"
	"math"

	"numaio/internal/topology"
	"numaio/internal/units"
)

// Direction says which way the bulk data flows relative to the device.
type Direction int

// Directions.
const (
	// ToDevice: the device DMA-reads host memory (sends, disk writes).
	ToDevice Direction = iota
	// FromDevice: the device DMA-writes host memory (receives, disk reads).
	FromDevice
)

func (d Direction) String() string {
	switch d {
	case ToDevice:
		return "to-device"
	case FromDevice:
		return "from-device"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Spec parameterizes one engine of one device kind.
type Spec struct {
	Name           string
	Kind           topology.DeviceKind
	Direction      Direction
	Ceiling        units.Bandwidth
	PathEfficiency float64
	SatKnee        units.Bandwidth // 0 disables the latency-bound floor
	PerStreamHost  units.Bandwidth // 0 means fully offloaded
	IRQWeight      float64         // core load on the device's node per unit rate
	HopDegradation float64         // per-hop multiplicative loss on the node leg
}

// Engine names (fio ioengine values).
const (
	EngineTCPSend   = "tcp_send"
	EngineTCPRecv   = "tcp_recv"
	EngineRDMAWrite = "rdma_write"
	EngineRDMARead  = "rdma_read"
	EngineRDMASend  = "rdma_send"
	EngineSSDWrite  = "ssd_write"
	EngineSSDRead   = "ssd_read"
	EngineMemcpy    = "memcpy" // the paper's proposed DMA-simulating engine
)

// TCPHostCostPerStream is the per-core TCP processing rate: one single-
// threaded stream cannot exceed this, and a node's cores bound its total
// TCP throughput. Fig. 5 saturates at four streams per four-core node.
const TCPHostCostPerStream = 5.3 * units.Gbps

// DefaultSpecs returns the calibrated engine table for the testbed devices.
func DefaultSpecs() map[string]Spec {
	return map[string]Spec{
		EngineTCPSend: {
			Name: EngineTCPSend, Kind: topology.DeviceNIC, Direction: ToDevice,
			Ceiling: 21.0 * units.Gbps, PathEfficiency: 0.61,
			PerStreamHost: TCPHostCostPerStream, IRQWeight: 0.07,
		},
		EngineTCPRecv: {
			Name: EngineTCPRecv, Kind: topology.DeviceNIC, Direction: FromDevice,
			Ceiling: 21.2 * units.Gbps, PathEfficiency: 0.514,
			PerStreamHost: TCPHostCostPerStream, IRQWeight: 0.07,
			HopDegradation: 0.01,
		},
		EngineRDMAWrite: {
			Name: EngineRDMAWrite, Kind: topology.DeviceNIC, Direction: ToDevice,
			Ceiling: 23.3 * units.Gbps, PathEfficiency: 0.65, IRQWeight: 0.01,
		},
		EngineRDMARead: {
			Name: EngineRDMARead, Kind: topology.DeviceNIC, Direction: FromDevice,
			Ceiling: 22.0 * units.Gbps, PathEfficiency: 0.465,
			SatKnee: 8 * units.Gbps, IRQWeight: 0.01,
		},
		EngineRDMASend: {
			Name: EngineRDMASend, Kind: topology.DeviceNIC, Direction: ToDevice,
			Ceiling: 22.5 * units.Gbps, PathEfficiency: 0.62, IRQWeight: 0.01,
		},
		EngineSSDWrite: {
			Name: EngineSSDWrite, Kind: topology.DeviceSSD, Direction: ToDevice,
			Ceiling: 14.5 * units.Gbps, PathEfficiency: 0.34, IRQWeight: 0.02,
		},
		EngineSSDRead: {
			Name: EngineSSDRead, Kind: topology.DeviceSSD, Direction: FromDevice,
			Ceiling: 17.4 * units.Gbps, PathEfficiency: 0.37, IRQWeight: 0.02,
			HopDegradation: 0.01,
		},
	}
}

// SpecFor returns the engine spec by name.
func SpecFor(engine string) (Spec, error) {
	s, ok := DefaultSpecs()[engine]
	if !ok {
		return Spec{}, fmt.Errorf("device: unknown engine %q", engine)
	}
	return s, nil
}

// NodeLeg returns the node-to-node route the engine's bulk data takes
// between the device's owning node and the buffer node, in data direction.
func (s Spec) NodeLeg(m *topology.Machine, deviceID string, buffer topology.NodeID) ([]int, error) {
	dev, ok := m.DeviceByID(deviceID)
	if !ok {
		return nil, fmt.Errorf("device: unknown device %q", deviceID)
	}
	if dev.Kind != s.Kind {
		return nil, fmt.Errorf("device: engine %s needs a %v, %q is a %v",
			s.Name, s.Kind, deviceID, dev.Kind)
	}
	if s.Direction == ToDevice {
		return m.RouteNodes(buffer, dev.Node)
	}
	return m.RouteNodes(dev.Node, buffer)
}

// ClassRate returns the aggregate rate the engine achieves when all its
// traffic targets buffers on the given node: the protocol ceiling clipped by
// what the engine extracts from the NUMA leg, with the latency-bound floor
// for credit-pipelined reads. This is the per-class rate BW_i of the
// paper's Eq. 1.
func (s Spec) ClassRate(m *topology.Machine, deviceID string, buffer topology.NodeID) (units.Bandwidth, error) {
	leg, err := s.NodeLeg(m, deviceID, buffer)
	if err != nil {
		return 0, err
	}
	ceil := float64(s.Ceiling)
	rate := ceil
	if len(leg) > 0 { // remote buffer: the NUMA leg constrains the engine
		p := float64(m.PathCapacity(leg))
		bwBound := s.PathEfficiency * p
		if s.SatKnee > 0 {
			floor := ceil * p / (p + float64(s.SatKnee))
			bwBound = math.Max(bwBound, floor)
		}
		rate = math.Min(ceil, bwBound)
	}
	if s.HopDegradation > 0 {
		rate *= math.Pow(1-s.HopDegradation, float64(len(leg)))
	}
	return units.Bandwidth(rate), nil
}

// DevicesOfKind lists the machine's devices of the engine's kind.
func (s Spec) DevicesOfKind(m *topology.Machine) []topology.Device {
	var out []topology.Device
	for _, d := range m.Devices() {
		if d.Kind == s.Kind {
			out = append(out, d)
		}
	}
	return out
}
