package fleet

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"numaio/internal/cli"
	"numaio/internal/resilience"
	"numaio/internal/telemetry"
	"numaio/internal/topology"
	"numaio/internal/units"
)

// RequestIDHeader carries the request ID from the gateway to the replica
// (and back to the client), so one logical request is traceable across
// hops in both sides' structured logs.
const RequestIDHeader = "X-Request-Id"

// forwardedByHeader marks a request as arriving through the gateway.
const forwardedByHeader = "X-Numaio-Gateway"

// GatewayConfig tunes the gateway.
type GatewayConfig struct {
	// Fleet is the validated membership/ring/replication config.
	Fleet *Config
	// Logger receives structured forward logs; nil discards them.
	Logger *slog.Logger
	// Client performs replica requests; nil means a 30s-timeout client.
	Client *http.Client
	// Clock drives breaker cooldowns and the health loop; nil means the
	// system clock.
	Clock resilience.Clock
	// BreakerThreshold consecutive probe/forward failures pull a replica
	// out of rotation; 0 means 3.
	BreakerThreshold int
	// BreakerCooldown is the open period before a replica is retried;
	// 0 means 10s.
	BreakerCooldown time.Duration
	// HealthInterval is the active health-check period for Run; 0 means 2s.
	HealthInterval time.Duration

	// FlightRecorderSize bounds the always-on flight recorder ring (recent
	// forwards and failovers, dumped via /debug/flightrecorder and on
	// failures); 0 means 4096 events, negative disables the recorder.
	FlightRecorderSize int
	// FlightDump, when non-nil, receives an automatic flight-recorder dump
	// on gateway 5xx responses, rate-limited to one dump per second.
	// cmd/numaiogw points it at stderr and also dumps on SIGQUIT via
	// DumpFlightRecorder.
	FlightDump io.Writer
}

// Gateway terminates the numaiod v1 API in front of a fleet of replicas:
// it routes by fingerprint ownership on the ring, proxies to successors
// when the owner is unavailable, replicates hot models, and serves the
// fleet-wide placement endpoint.
type Gateway struct {
	ring        *Ring
	members     *Membership
	mux         *http.ServeMux
	log         *slog.Logger
	client      *http.Client
	clock       resilience.Clock
	healthEvery time.Duration
	replication int
	hotAfter    int

	// ridPrefix + ridSeq generate request IDs for requests arriving
	// without one.
	ridPrefix string
	ridSeq    atomic.Uint64

	// Metrics. requests counts by (endpoint, status) like numaiod's;
	// forwards counts per replica; routed/proxied split forwards by
	// whether they landed on the ring owner.
	reqMu       sync.RWMutex
	requests    map[string]*telemetry.IntCounterVec
	forwards    map[string]*telemetry.Counter
	routed      telemetry.Counter
	proxied     telemetry.Counter
	fwdErrors   telemetry.Counter
	fleetPlaces telemetry.Counter
	pulls       telemetry.Counter
	pullErrors  telemetry.Counter
	reqLat      *telemetry.BucketHistogram
	registry    *telemetry.Registry

	// traces owns the /debug/trace lifecycle, mirroring numaiod's, so a
	// fleet-wide recording can include the gateway's own spans.
	traces telemetry.TraceControl

	// flight is the always-on flight recorder (nil when disabled);
	// flightDump receives automatic dumps on gateway failures, rate-limited
	// via lastFlightDump.
	flight         *telemetry.FlightRecorder
	flightDump     io.Writer
	lastFlightDump atomic.Int64

	// Hot-model tracking: routed requests per fingerprint, and the set
	// already replicated so each fingerprint replicates once.
	hotMu      sync.Mutex
	hotCounts  map[string]int
	replicated map[string]bool
}

// NewGateway builds a gateway from the config.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	if cfg.Fleet == nil || len(cfg.Fleet.Replicas) == 0 {
		return nil, fmt.Errorf("fleet: gateway needs a config with replicas")
	}
	names := make([]string, len(cfg.Fleet.Replicas))
	for i, rep := range cfg.Fleet.Replicas {
		names[i] = rep.Name
	}
	ring, err := NewRing(names, cfg.Fleet.VNodes)
	if err != nil {
		return nil, err
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	clock := cfg.Clock
	if clock == nil {
		clock = resilience.SystemClock{}
	}
	hot := cfg.Fleet.HotThreshold
	if hot == 0 {
		hot = 8
	}
	var pre [4]byte
	if _, err := rand.Read(pre[:]); err != nil {
		return nil, err
	}
	var flight *telemetry.FlightRecorder
	if cfg.FlightRecorderSize >= 0 {
		size := cfg.FlightRecorderSize
		if size == 0 {
			size = 4096
		}
		flight = telemetry.NewFlightRecorder(size)
	}
	g := &Gateway{
		ring:        ring,
		members:     NewMembership(cfg.Fleet.Replicas, cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Clock, client),
		mux:         http.NewServeMux(),
		log:         logger,
		client:      client,
		clock:       clock,
		healthEvery: cfg.HealthInterval,
		replication: cfg.Fleet.Replication,
		hotAfter:    hot,
		ridPrefix:   "gw-" + hex.EncodeToString(pre[:]) + "-",
		requests:    make(map[string]*telemetry.IntCounterVec),
		forwards:    make(map[string]*telemetry.Counter, len(names)),
		reqLat:      telemetry.NewBucketHistogram(gatewayLatencyBuckets),
		flight:      flight,
		flightDump:  cfg.FlightDump,
		hotCounts:   make(map[string]int),
		replicated:  make(map[string]bool),
	}
	for _, name := range names {
		g.forwards[name] = new(telemetry.Counter)
	}
	// A breaker opening is exactly the moment the recent-history ring is
	// for: leave a resilience breadcrumb and trigger the automatic dump.
	g.members.OnBreakerOpen = func(name string) {
		g.flight.Record(telemetry.FlightEvent{
			Time:   time.Now().UnixNano(),
			Name:   "breaker_open",
			Cat:    "resilience",
			Detail: "replica=" + name,
		})
		g.log.Warn("breaker open", "replica", name)
		g.dumpFlight("breaker open on " + name)
	}
	g.registry = g.newRegistry()
	g.routes()
	return g, nil
}

// Run starts the active health-check loop until ctx is done. The first
// probe round runs immediately so a dead replica is noticed at boot, not
// one interval later.
func (g *Gateway) Run(ctx context.Context) {
	g.members.CheckNow(ctx)
	g.members.Run(ctx, g.clock, g.healthEvery)
}

// Handler returns the gateway's HTTP handler.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Membership exposes the tracker (tests, status).
func (g *Gateway) Membership() *Membership { return g.members }

// Ring exposes the ring (tests, status).
func (g *Gateway) Ring() *Ring { return g.ring }

func (g *Gateway) routes() {
	g.handle("GET /healthz", "/healthz", g.handleHealthz)
	g.handle("GET /metrics", "/metrics", g.handleMetrics)
	g.handle("GET /v1/fleet/status", "/v1/fleet/status", g.handleFleetStatus)
	g.handle("POST /v1/fleet/place", "/v1/fleet/place", g.handleFleetPlace)
	g.handle("GET /v1/models/{fingerprint}", "/v1/models", g.handleModelGet)
	for _, ep := range []string{
		"/v1/characterize", "/v1/predict", "/v1/predict/batch", "/v1/place", "/v1/whatif",
	} {
		ep := ep
		g.handle("POST "+ep, ep, func(w http.ResponseWriter, r *http.Request) {
			g.shardProxy(w, r, ep, "")
		})
	}
	g.handle("POST /debug/trace/start", "/debug/trace/start", g.handleTraceStart)
	g.handle("POST /debug/trace/stop", "/debug/trace/stop", g.handleTraceStop)
	g.handle("GET /debug/trace", "/debug/trace", g.handleTraceDownload)
	g.handle("GET /debug/flightrecorder", "/debug/flightrecorder", g.handleFlightRecorder)
}

// gatewayLatencyBuckets cover a proxied hop: forward latency dominates, so
// the range matches numaiod's request buckets.
var gatewayLatencyBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.025, 0.1, 0.5, 1, 5}

// handle registers a pattern under the logging/metrics middleware, like
// numaiod's. Every response carries the request ID (incoming or freshly
// assigned) so clients can correlate, plus the trace context the gateway
// minted (or derived as a child of the caller's) — the same context it
// forwards to replicas, so one trace ID spans the whole proxied chain. v1
// endpoints additionally report the gateway's own stage breakdown (route,
// forward, failover) via Server-Timing alongside the replica's, feed the
// latency histogram with request-ID exemplars, and leave a flight-recorder
// event.
func (g *Gateway) handle(pattern, endpoint string, h http.HandlerFunc) {
	isV1 := strings.HasPrefix(endpoint, "/v1/")
	g.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := r.Header.Get(RequestIDHeader)
		if rid == "" {
			rid = g.ridPrefix + strconv.FormatUint(g.ridSeq.Add(1), 10)
			r.Header.Set(RequestIDHeader, rid)
		}
		w.Header().Set(RequestIDHeader, rid)
		var tc telemetry.TraceContext
		if in, ok := telemetry.ParseTraceContext(r.Header.Get(telemetry.TraceCtxHeader)); ok {
			tc = in.Child()
		} else {
			tc = telemetry.NewTraceContext()
		}
		w.Header().Set(telemetry.TraceCtxHeader, tc.String())
		r = r.WithContext(telemetry.ContextWithTrace(r.Context(), tc))
		rec := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		if isV1 {
			rec.stages = telemetry.NewStages()
			r = r.WithContext(telemetry.ContextWithStages(r.Context(), rec.stages))
		}
		var span *telemetry.Span
		if tr := g.traces.Active(); tr != nil {
			span = tr.StartSpan(endpoint, "http",
				telemetry.String("method", r.Method),
				telemetry.String("trace_id", tc.TraceID),
				telemetry.String("span_id", tc.SpanID))
		}
		h(rec, r)
		if span != nil {
			span.SetAttr(telemetry.Int("status", rec.status))
			span.End()
		}
		elapsed := time.Since(start)
		g.observeRequest(endpoint, rec.status)
		if isV1 {
			g.reqLat.ObserveExemplar(elapsed.Seconds(), rid)
			g.flight.Record(telemetry.FlightEvent{
				Time:    start.UnixNano(),
				Dur:     elapsed,
				Status:  rec.status,
				Name:    endpoint,
				Cat:     "http",
				RID:     rid,
				TraceID: tc.TraceID,
			})
			if rec.status >= http.StatusInternalServerError {
				g.dumpFlight(fmt.Sprintf("status %d on %s", rec.status, endpoint))
			}
		}
		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"duration", elapsed,
			"request_id", rid,
			"remote", r.RemoteAddr,
			"trace_id", tc.TraceID,
		}
		attrs = rec.stages.AppendLogAttrs(attrs)
		g.log.Info("request", attrs...)
	})
}

// statusWriter captures the response status and injects the gateway's own
// stage breakdown as an additional Server-Timing value at WriteHeader time
// — replica-reported stages pass through as their own header line, so the
// client sees both hops' attributions.
type statusWriter struct {
	http.ResponseWriter
	status int
	stages *telemetry.Stages
}

func (w *statusWriter) WriteHeader(code int) {
	if st := w.stages.Header(); st != "" {
		w.ResponseWriter.Header().Add("Server-Timing", st)
	}
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// dumpFlight writes one flight-recorder dump to the configured FlightDump
// writer, rate-limited to one per second.
func (g *Gateway) dumpFlight(reason string) {
	if g.flightDump == nil || g.flight == nil {
		return
	}
	now := time.Now().UnixNano()
	last := g.lastFlightDump.Load()
	if now-last < int64(time.Second) || !g.lastFlightDump.CompareAndSwap(last, now) {
		return
	}
	fmt.Fprintf(g.flightDump, "numaiogw flight recorder dump (%s):\n", reason)
	_ = g.flight.WriteJSON(g.flightDump)
	fmt.Fprintln(g.flightDump)
}

// DumpFlightRecorder writes the flight recorder's JSON snapshot to w —
// cmd/numaiogw wires it to SIGQUIT. It reports an error when the recorder
// is disabled.
func (g *Gateway) DumpFlightRecorder(w io.Writer) error {
	if g.flight == nil {
		return fmt.Errorf("fleet: flight recorder disabled")
	}
	return g.flight.WriteJSON(w)
}

// WriteMetrics renders the gateway's /metrics payload. Exported so tests
// can pin the exposition format without an HTTP round trip.
func (g *Gateway) WriteMetrics(w io.Writer) { g.registry.Render(w) }

func (g *Gateway) observeRequest(endpoint string, status int) {
	g.reqMu.RLock()
	vec, ok := g.requests[endpoint]
	g.reqMu.RUnlock()
	if !ok {
		g.reqMu.Lock()
		if vec, ok = g.requests[endpoint]; !ok {
			vec = telemetry.NewIntCounterVec()
			g.requests[endpoint] = vec
		}
		g.reqMu.Unlock()
	}
	vec.With(status).Inc()
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	avail, _ := g.members.Counts()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if avail == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "degraded: 0/%d replicas available\n", g.ring.Len())
		return
	}
	fmt.Fprintf(w, "ok %d/%d replicas available\n", avail, g.ring.Len())
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g.WriteMetrics(w)
}

// newRegistry wires the gateway gauge/counter families. Sample order is
// registration order, so the smoke greps are stable.
func (g *Gateway) newRegistry() *telemetry.Registry {
	r := telemetry.NewRegistry()
	r.IntGaugeFunc("numaiogw_replicas",
		"Replicas on the consistent-hash ring (static membership).",
		func() int64 { return int64(g.ring.Len()) })
	r.IntGaugeFunc("numaiogw_ring_points",
		"Virtual nodes on the consistent-hash ring.",
		func() int64 { return int64(g.ring.Points()) })
	r.IntGaugeFunc("numaiogw_replicas_healthy",
		"Replicas currently routable (healthy and breaker not open).",
		func() int64 { avail, _ := g.members.Counts(); return int64(avail) })
	r.IntGaugeFunc("numaiogw_breaker_open",
		"Replica circuit breakers currently open.",
		func() int64 { _, open := g.members.Counts(); return int64(open) })
	r.Register(telemetry.Series{
		Name: "numaiogw_replica_healthy", Type: "gauge",
		Help: "Per-replica routability (1 routable, 0 not).",
		Collect: func(w io.Writer) {
			for _, rep := range g.members.Replicas() {
				v := 0
				if g.members.Available(rep.Name) {
					v = 1
				}
				fmt.Fprintf(w, "numaiogw_replica_healthy{replica=%q} %d\n", rep.Name, v)
			}
		}})
	r.Register(telemetry.Series{
		Name: "numaiogw_forwards_total", Type: "counter",
		Help: "Requests forwarded, by replica.",
		Collect: func(w io.Writer) {
			names := g.ring.Members()
			for _, name := range names {
				fmt.Fprintf(w, "numaiogw_forwards_total{replica=%q} %d\n", name, g.forwards[name].Value())
			}
		}})
	r.CounterSeries("numaiogw_routed_total",
		"Forwards that landed on the key's ring owner.", &g.routed)
	r.CounterSeries("numaiogw_proxied_total",
		"Forwards proxied to a non-owner because the owner was unavailable.", &g.proxied)
	r.CounterSeries("numaiogw_forward_errors_total",
		"Forward attempts that failed and fell through to the next replica.", &g.fwdErrors)
	r.CounterSeries("numaiogw_fleet_place_total",
		"Fleet-wide placement requests served.", &g.fleetPlaces)
	r.CounterSeries("numaiogw_replication_pulls_total",
		"Hot-model replication pulls triggered on peers.", &g.pulls)
	r.CounterSeries("numaiogw_replication_pull_errors_total",
		"Hot-model replication pulls that failed.", &g.pullErrors)
	r.IntGaugeFunc("numaiogw_hot_models",
		"Fingerprints replicated to peers for read availability.",
		func() int64 {
			g.hotMu.Lock()
			defer g.hotMu.Unlock()
			return int64(len(g.replicated))
		})
	r.IntGaugeFunc("numaiogw_trace_active",
		"Whether a /debug/trace recording is in progress.",
		func() int64 {
			if g.traces.Tracing() {
				return 1
			}
			return 0
		})
	r.IntGaugeFunc("numaiogw_trace_events",
		"Events recorded by the active (or last stopped) trace.",
		func() int64 { return int64(g.traces.Current().Len()) })
	r.IntGaugeFunc("numaiogw_flight_events",
		"Events currently retained by the always-on flight recorder.",
		func() int64 { return int64(g.flight.Len()) })
	r.Register(telemetry.Series{
		Name: "numaiogw_request_seconds",
		Type: "histogram",
		Help: "v1 request latency through the gateway, with the last request ID per bucket as an exemplar.",
		Collect: func(w io.Writer) {
			counts := g.reqLat.Counts()
			bounds := g.reqLat.Bounds()
			var cum int64
			writeBucket := func(le string, i int) {
				fmt.Fprintf(w, "numaiogw_request_seconds_bucket{le=%q} %d", le, cum)
				if ex := g.reqLat.Exemplar(i); ex != "" {
					fmt.Fprintf(w, " # {request_id=%q}", ex)
				}
				fmt.Fprintln(w)
			}
			for i, le := range bounds {
				cum += counts[i]
				writeBucket(strconv.FormatFloat(le, 'g', -1, 64), i)
			}
			cum += counts[len(bounds)]
			writeBucket("+Inf", len(bounds))
			fmt.Fprintf(w, "numaiogw_request_seconds_sum %g\n", g.reqLat.Sum())
			fmt.Fprintf(w, "numaiogw_request_seconds_count %d\n", g.reqLat.Total())
		},
	})
	r.Register(telemetry.Series{
		Name: "numaiogw_requests_total", Type: "counter",
		Help: "Gateway requests served, by endpoint and status.",
		Collect: func(w io.Writer) {
			g.reqMu.RLock()
			endpoints := make([]string, 0, len(g.requests))
			for e := range g.requests {
				endpoints = append(endpoints, e)
			}
			vecs := make(map[string]*telemetry.IntCounterVec, len(endpoints))
			for _, e := range endpoints {
				vecs[e] = g.requests[e]
			}
			g.reqMu.RUnlock()
			sort.Strings(endpoints)
			for _, e := range endpoints {
				for _, s := range vecs[e].Keys() {
					fmt.Fprintf(w, "numaiogw_requests_total{endpoint=%q,status=\"%d\"} %d\n", e, s, vecs[e].Value(s))
				}
			}
		}})
	return r
}

// shardRequest is the lenient sniff of any v1 request body: just enough to
// derive the shard key. Unknown fields are the forwarded handler's
// business, not the gateway's.
type shardRequest struct {
	Machine     json.RawMessage `json:"machine,omitempty"`
	Fingerprint string          `json:"fingerprint,omitempty"`
}

// shardKey resolves the fingerprint a request shards on: an explicit
// fingerprint field wins; otherwise the machine (named profile or inline
// object, empty meaning the default profile) is resolved and fingerprinted
// — the same resolution the replicas themselves use, so the gateway and
// the fleet always agree on identity.
func shardKey(body []byte) (string, error) {
	var req shardRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			return "", fmt.Errorf("invalid JSON body: %w", err)
		}
	}
	if req.Fingerprint != "" {
		return req.Fingerprint, nil
	}
	m, err := cli.ResolveMachine(req.Machine)
	if err != nil {
		return "", err
	}
	return topology.Fingerprint(m)
}

func (g *Gateway) handleModelGet(w http.ResponseWriter, r *http.Request) {
	g.shardProxy(w, r, "/v1/models", r.PathValue("fingerprint"))
}

// shardProxy is the routed data path: derive the shard key, walk the
// ring's preference order for it, and forward to the first replica that
// answers. The owner gets the request when it is routable; successors (and
// then the rest of the ring) absorb it when not — degraded but serving.
func (g *Gateway) shardProxy(w http.ResponseWriter, r *http.Request, endpoint, key string) {
	stg := telemetry.StagesFromContext(r.Context())
	routeStart := time.Now()
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeGatewayError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if key == "" {
		key, err = shardKey(body)
		if err != nil {
			writeGatewayError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	rid := r.Header.Get(RequestIDHeader)
	order := g.ring.Owners(key, g.ring.Len())
	owner := order[0]
	stg.Add("route", time.Since(routeStart))

	tryOne := func(name string) (*http.Response, error) {
		rep, _ := g.members.Replica(name)
		req, err := http.NewRequestWithContext(r.Context(), r.Method,
			rep.URL+r.URL.Path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if ct := r.Header.Get("Content-Type"); ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		req.Header.Set(RequestIDHeader, rid)
		req.Header.Set(forwardedByHeader, "numaiogw")
		// Forward the gateway's span context, so the replica's span becomes
		// a child in the same trace.
		if tc, ok := telemetry.TraceFromContext(r.Context()); ok {
			req.Header.Set(telemetry.TraceCtxHeader, tc.String())
		}
		return g.client.Do(req)
	}

	serve := func(name string, resp *http.Response) {
		defer resp.Body.Close()
		g.forwards[name].Add(1)
		role := "routed"
		if name == owner {
			g.routed.Inc()
		} else {
			role = "proxied"
			g.proxied.Inc()
		}
		g.log.Info("forward",
			"endpoint", endpoint,
			"replica", name,
			"role", role,
			"status", resp.StatusCode,
			"request_id", rid,
			"key", key)
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		// The replica's own stage breakdown passes through as additional
		// Server-Timing values; the statusWriter adds the gateway's on
		// WriteHeader, so the client sees both hops' attributions.
		for _, st := range resp.Header.Values("Server-Timing") {
			w.Header().Add("Server-Timing", st)
		}
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		if resp.StatusCode == http.StatusOK {
			g.noteHot(key, name)
		}
	}

	attempt := func(name string, markFailures bool) bool {
		attemptStart := time.Now()
		resp, err := tryOne(name)
		if err != nil {
			stg.Add("failover", time.Since(attemptStart))
			g.fwdErrors.Inc()
			if markFailures {
				g.members.ReportFailure(name)
			}
			g.recordFailover(endpoint, name, rid, r.Context())
			g.log.Warn("forward failed", "endpoint", endpoint, "replica", name,
				"request_id", rid, "error", err)
			return false
		}
		// 502/503/504 mean the replica itself is shedding or struggling;
		// a successor may still serve. Other statuses (including 4xx and
		// plain 500s) are real answers and pass through.
		switch resp.StatusCode {
		case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			stg.Add("failover", time.Since(attemptStart))
			g.fwdErrors.Inc()
			g.recordFailover(endpoint, name, rid, r.Context())
			return false
		}
		g.members.ReportSuccess(name)
		stg.Add("forward", time.Since(attemptStart))
		serve(name, resp)
		return true
	}

	for _, name := range order {
		if !g.members.Available(name) {
			continue
		}
		if attempt(name, true) {
			return
		}
	}
	// Every routable replica failed (or none was routable): last-ditch
	// sweep over the full preference order, without moving breakers —
	// these replicas are already known-bad.
	for _, name := range order {
		if g.members.Available(name) {
			continue // already tried above
		}
		if attempt(name, false) {
			return
		}
	}
	writeGatewayError(w, http.StatusBadGateway,
		"no replica could serve %s for key %s (%d replicas tried)", endpoint, key, len(order))
}

// noteHot counts one served request for a fingerprint and, on crossing the
// hot threshold, replicates its model from the replica that just served it
// to the next owners on the ring — synchronously, so tests and smokes see
// the copies as soon as the crossing response returns.
func (g *Gateway) noteHot(key, servedBy string) {
	if g.replication <= 1 || g.hotAfter < 0 {
		return
	}
	g.hotMu.Lock()
	g.hotCounts[key]++
	fire := g.hotCounts[key] >= g.hotAfter && !g.replicated[key]
	if fire {
		g.replicated[key] = true
	}
	g.hotMu.Unlock()
	if !fire {
		return
	}
	g.replicate(key, servedBy)
}

// pullRequest is the body of the replica-side replication hook
// (POST /v1/models/pull on numaiod).
type pullRequest struct {
	Fingerprint string `json:"fingerprint"`
	Source      string `json:"source"`
}

// replicate asks up to replication-1 ring successors to pull the model for
// fp from the replica holding it. Failures are logged and counted, never
// surfaced: replication is an availability optimization, not a
// correctness requirement.
func (g *Gateway) replicate(fp, servedBy string) {
	src, ok := g.members.Replica(servedBy)
	if !ok {
		return
	}
	body, err := json.Marshal(pullRequest{Fingerprint: fp, Source: src.URL})
	if err != nil {
		return
	}
	peers := g.ring.Owners(fp, g.replication)
	for _, name := range peers {
		if name == servedBy || !g.members.Available(name) {
			continue
		}
		rep, _ := g.members.Replica(name)
		resp, err := g.client.Post(rep.URL+"/v1/models/pull", "application/json", bytes.NewReader(body))
		if err != nil {
			g.pullErrors.Inc()
			g.log.Warn("replication pull failed", "fingerprint", fp, "peer", name, "error", err)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			g.pullErrors.Inc()
			g.log.Warn("replication pull rejected", "fingerprint", fp, "peer", name, "status", resp.StatusCode)
			continue
		}
		g.pulls.Inc()
		g.log.Info("replicated hot model", "fingerprint", fp, "source", servedBy, "peer", name)
	}
}

// fleetStatus is the GET /v1/fleet/status body.
type fleetStatus struct {
	Replicas    []replicaStatus `json:"replicas"`
	RingMembers int             `json:"ring_members"`
	RingPoints  int             `json:"ring_points"`
	Replication int             `json:"replication"`
	HotModels   int             `json:"hot_models"`
}

type replicaStatus struct {
	Name      string `json:"name"`
	URL       string `json:"url"`
	Available bool   `json:"available"`
	Breaker   string `json:"breaker"`
}

func (g *Gateway) handleFleetStatus(w http.ResponseWriter, r *http.Request) {
	st := fleetStatus{
		RingMembers: g.ring.Len(),
		RingPoints:  g.ring.Points(),
		Replication: g.replication,
	}
	g.hotMu.Lock()
	st.HotModels = len(g.replicated)
	g.hotMu.Unlock()
	for _, rep := range g.members.Replicas() {
		st.Replicas = append(st.Replicas, replicaStatus{
			Name:      rep.Name,
			URL:       rep.URL,
			Available: g.members.Available(rep.Name),
			Breaker:   g.members.BreakerState(rep.Name).String(),
		})
	}
	writeGatewayJSON(w, http.StatusOK, st)
}

// fleetPlaceRequest is the POST /v1/fleet/place body: the paper's
// scheduler application at fleet scale — find the (host, node) with the
// best predicted bandwidth for this job.
type fleetPlaceRequest struct {
	Machine json.RawMessage `json:"machine,omitempty"`
	Config  json.RawMessage `json:"config,omitempty"`
	Target  int             `json:"target"`
	Engine  string          `json:"engine,omitempty"`
	Tasks   int             `json:"tasks,omitempty"` // default 1
}

// hostPlacement is one replica's answer in the fan-out.
type hostPlacement struct {
	Host         string  `json:"host"`
	Node         int     `json:"node"`
	Placement    []int   `json:"placement,omitempty"`
	PredictedBPS float64 `json:"predicted_bps,omitempty"`
	Error        string  `json:"error,omitempty"`
}

// fleetPlaceResponse reports the best host and node plus every replica's
// answer. Degraded is true when some configured replica did not answer —
// the placement still stands over the hosts that did.
type fleetPlaceResponse struct {
	Host          string          `json:"host"`
	Node          int             `json:"node"`
	Placement     []int           `json:"placement"`
	PredictedBPS  float64         `json:"predicted_bps"`
	PredictedGbps float64         `json:"predicted_gbps"`
	Fingerprint   string          `json:"fingerprint,omitempty"`
	Replicas      int             `json:"replicas"`
	Responses     int             `json:"responses"`
	Degraded      bool            `json:"degraded"`
	PerHost       []hostPlacement `json:"per_host"`
}

// replicaPlaceResponse is the slice of a replica's /v1/place body the
// gateway reads.
type replicaPlaceResponse struct {
	Fingerprint string `json:"fingerprint"`
	Results     []struct {
		Policy      string  `json:"policy"`
		Placement   []int   `json:"placement"`
		EstimateBPS float64 `json:"estimate_bps"`
	} `json:"results"`
}

func (g *Gateway) handleFleetPlace(w http.ResponseWriter, r *http.Request) {
	var req fleetPlaceRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeGatewayError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	tasks := req.Tasks
	if tasks <= 0 {
		tasks = 1
	}
	engine := req.Engine
	if engine == "" {
		engine = "memcpy"
	}
	placeBody := map[string]any{
		"target":   req.Target,
		"engine":   engine,
		"tasks":    tasks,
		"policies": []string{"class-balanced"},
	}
	if len(req.Machine) > 0 {
		placeBody["machine"] = req.Machine
	}
	if len(req.Config) > 0 {
		placeBody["config"] = req.Config
	}
	body, err := json.Marshal(placeBody)
	if err != nil {
		writeGatewayError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	rid := r.Header.Get(RequestIDHeader)
	g.fleetPlaces.Inc()

	// Fan out to every routable replica concurrently; each answers for the
	// host it models.
	replicas := g.members.Replicas()
	results := make([]hostPlacement, len(replicas))
	fingerprints := make([]string, len(replicas))
	asked := 0
	var wg sync.WaitGroup
	for i, rep := range replicas {
		if !g.members.Available(rep.Name) {
			results[i] = hostPlacement{Host: rep.Name, Error: "replica unavailable"}
			continue
		}
		asked++
		wg.Add(1)
		go func(i int, rep Replica) {
			defer wg.Done()
			results[i], fingerprints[i] = g.placeOnReplica(r.Context(), rep, body, rid)
		}(i, rep)
	}
	wg.Wait()

	resp := fleetPlaceResponse{Replicas: len(replicas), PerHost: results}
	sort.Slice(resp.PerHost, func(i, j int) bool { return resp.PerHost[i].Host < resp.PerHost[j].Host })
	best := -1
	for i := range resp.PerHost {
		hp := &resp.PerHost[i]
		if hp.Error != "" {
			continue
		}
		resp.Responses++
		// Strictly higher predicted bandwidth wins; exact ties break to the
		// lexicographically smallest host name, so equal hosts place
		// deterministically. PerHost is name-sorted, so first-wins is the
		// tie-break.
		if best < 0 || hp.PredictedBPS > resp.PerHost[best].PredictedBPS {
			best = i
		}
	}
	resp.Degraded = resp.Responses < len(replicas)
	if best < 0 {
		writeGatewayError(w, http.StatusBadGateway,
			"no replica answered the fleet placement (%d configured, %d asked)", len(replicas), asked)
		return
	}
	for i := range fingerprints {
		if fingerprints[i] != "" {
			resp.Fingerprint = fingerprints[i]
			break
		}
	}
	resp.Host = resp.PerHost[best].Host
	resp.Node = resp.PerHost[best].Node
	resp.Placement = resp.PerHost[best].Placement
	resp.PredictedBPS = resp.PerHost[best].PredictedBPS
	resp.PredictedGbps = units.Bandwidth(resp.PredictedBPS).Gbps()
	writeGatewayJSON(w, http.StatusOK, resp)
}

// placeOnReplica runs one replica's /v1/place leg of the fan-out.
func (g *Gateway) placeOnReplica(ctx context.Context, rep Replica, body []byte, rid string) (hostPlacement, string) {
	hp := hostPlacement{Host: rep.Name}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.URL+"/v1/place", bytes.NewReader(body))
	if err != nil {
		hp.Error = err.Error()
		return hp, ""
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(RequestIDHeader, rid)
	req.Header.Set(forwardedByHeader, "numaiogw")
	if tc, ok := telemetry.TraceFromContext(ctx); ok {
		req.Header.Set(telemetry.TraceCtxHeader, tc.String())
	}
	resp, err := g.client.Do(req)
	if err != nil {
		g.members.ReportFailure(rep.Name)
		hp.Error = err.Error()
		return hp, ""
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		hp.Error = err.Error()
		return hp, ""
	}
	if resp.StatusCode != http.StatusOK {
		hp.Error = fmt.Sprintf("status %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
		return hp, ""
	}
	g.members.ReportSuccess(rep.Name)
	var pr replicaPlaceResponse
	if err := json.Unmarshal(raw, &pr); err != nil {
		hp.Error = err.Error()
		return hp, ""
	}
	if len(pr.Results) == 0 || len(pr.Results[0].Placement) == 0 {
		hp.Error = "replica returned no placement"
		return hp, ""
	}
	hp.Node = pr.Results[0].Placement[0]
	hp.Placement = pr.Results[0].Placement
	hp.PredictedBPS = pr.Results[0].EstimateBPS
	return hp, pr.Fingerprint
}

type gatewayError struct {
	Error string `json:"error"`
}

func writeGatewayError(w http.ResponseWriter, status int, format string, args ...any) {
	writeGatewayJSON(w, status, gatewayError{Error: fmt.Sprintf(format, args...)})
}

func writeGatewayJSON(w http.ResponseWriter, status int, v any) {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf)
	w.Write([]byte("\n"))
}
