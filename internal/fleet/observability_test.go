package fleet

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"numaio/internal/telemetry"
)

// TestGatewayTracePropagation drives a predict through the gateway with a
// client-supplied trace context and checks the whole chain shares one
// trace ID: the gateway's response header, the replica's response header
// (via the gateway's own child context on the forward hop), and both
// flight recorders.
func TestGatewayTracePropagation(t *testing.T) {
	tf := newTestFleet(t, 3, nil)
	parent := telemetry.NewTraceContext()
	hdr := http.Header{}
	hdr.Set(telemetry.TraceCtxHeader, parent.String())
	hdr.Set(RequestIDHeader, "trace-rid-1")

	rec := tf.do(t, http.MethodPost, "/v1/predict", predictBody, hdr)
	if rec.Code != http.StatusOK {
		t.Fatalf("predict = %d: %s", rec.Code, rec.Body)
	}
	gwCtx, ok := telemetry.ParseTraceContext(rec.Header().Get(telemetry.TraceCtxHeader))
	if !ok {
		t.Fatalf("gateway X-Trace-Ctx %q does not parse", rec.Header().Get(telemetry.TraceCtxHeader))
	}
	if gwCtx.TraceID != parent.TraceID {
		t.Errorf("gateway trace ID %s, want the client's %s", gwCtx.TraceID, parent.TraceID)
	}
	if gwCtx.SpanID == parent.SpanID {
		t.Error("gateway kept the client span ID instead of minting a child")
	}

	// Both the gateway's and the serving replica's flight recorders hold an
	// event with the shared trace ID.
	gwDump := tf.do(t, http.MethodGet, "/debug/flightrecorder", "", nil)
	if gwDump.Code != http.StatusOK {
		t.Fatalf("gateway flightrecorder = %d", gwDump.Code)
	}
	if !strings.Contains(gwDump.Body.String(), parent.TraceID) {
		t.Errorf("gateway flight recorder lacks trace ID %s:\n%s", parent.TraceID, gwDump.Body)
	}
	owner := tf.gw.Ring().Owner(fingerprintOf(t, "intel-4s4n"))
	var replicaDump bytes.Buffer
	if err := tf.services[owner].DumpFlightRecorder(&replicaDump); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(replicaDump.String(), parent.TraceID) {
		t.Errorf("owner replica's flight recorder lacks trace ID %s:\n%s", parent.TraceID, replicaDump.String())
	}
	if !strings.Contains(replicaDump.String(), "trace-rid-1") {
		t.Error("owner replica's flight recorder lacks the forwarded request ID")
	}
}

// TestGatewayServerTiming checks the client sees both hops' stage
// attributions: the gateway's route/forward breakdown and the replica's
// passed-through Server-Timing line.
func TestGatewayServerTiming(t *testing.T) {
	tf := newTestFleet(t, 3, nil)
	rec := tf.do(t, http.MethodPost, "/v1/predict", predictBody, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("predict = %d: %s", rec.Code, rec.Body)
	}
	values := rec.Header().Values("Server-Timing")
	joined := strings.Join(values, " | ")
	for _, stage := range []string{"route;dur=", "forward;dur=", "solve;dur="} {
		if !strings.Contains(joined, stage) {
			t.Errorf("Server-Timing %q lacks %q", joined, stage)
		}
	}
	if len(values) < 2 {
		t.Errorf("want separate gateway and replica Server-Timing values, got %v", values)
	}
}

// TestGatewayFailoverFlightEvents kills the owner and checks the
// degradation leaves resilience breadcrumbs in the gateway's flight
// recorder: a failover event per failed forward attempt and, once the
// failures reach the breaker threshold (default 3), a breaker_open event.
func TestGatewayFailoverFlightEvents(t *testing.T) {
	tf := newTestFleet(t, 3, nil)
	owner := tf.gw.Ring().Owner(fingerprintOf(t, "intel-4s4n"))
	tf.servers[owner].Close()

	for i := 0; i < 3; i++ {
		rec := tf.do(t, http.MethodPost, "/v1/predict", predictBody, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("predict %d with dead owner = %d: %s", i, rec.Code, rec.Body)
		}
	}
	dump := tf.do(t, http.MethodGet, "/debug/flightrecorder", "", nil)
	var parsed struct {
		Events []struct {
			Name   string `json:"name"`
			Cat    string `json:"cat"`
			Detail string `json:"detail"`
		} `json:"events"`
	}
	if err := json.Unmarshal(dump.Body.Bytes(), &parsed); err != nil {
		t.Fatalf("flight dump is not valid JSON: %v", err)
	}
	sawFailover, sawBreakerOpen := false, false
	for _, e := range parsed.Events {
		if e.Cat != "resilience" || !strings.Contains(e.Detail, owner) {
			continue
		}
		switch e.Name {
		case "failover":
			sawFailover = true
		case "breaker_open":
			sawBreakerOpen = true
		}
	}
	if !sawFailover {
		t.Errorf("no failover event naming replica %s in the flight recorder:\n%s", owner, dump.Body)
	}
	if !sawBreakerOpen {
		t.Errorf("no breaker_open event naming replica %s in the flight recorder:\n%s", owner, dump.Body)
	}
}

// TestGatewayTraceLifecycle drives the gateway's /debug/trace endpoints and
// checks the recording contains the proxied request span tagged with the
// trace ID.
func TestGatewayTraceLifecycle(t *testing.T) {
	tf := newTestFleet(t, 2, nil)
	if rec := tf.do(t, http.MethodGet, "/debug/trace", "", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("download with no trace = %d, want 404", rec.Code)
	}
	if rec := tf.do(t, http.MethodPost, "/debug/trace/start", "", nil); rec.Code != http.StatusOK {
		t.Fatalf("start = %d", rec.Code)
	}
	pred := tf.do(t, http.MethodPost, "/v1/predict", predictBody, nil)
	tc, _ := telemetry.ParseTraceContext(pred.Header().Get(telemetry.TraceCtxHeader))
	if rec := tf.do(t, http.MethodPost, "/debug/trace/stop", "", nil); rec.Code != http.StatusOK {
		t.Fatalf("stop = %d", rec.Code)
	}
	dl := tf.do(t, http.MethodGet, "/debug/trace", "", nil)
	if dl.Code != http.StatusOK {
		t.Fatalf("download = %d", dl.Code)
	}
	body := dl.Body.String()
	if !strings.Contains(body, `"/v1/predict"`) || !strings.Contains(body, tc.TraceID) {
		t.Errorf("gateway trace lacks the predict span or its trace ID:\n%s", body)
	}
}

// TestGatewayMetricsExposition checks the new gateway families render with
// HELP/TYPE, the latency histogram carries exemplars, and back-to-back
// renders are byte-identical on an idle gateway.
func TestGatewayMetricsExposition(t *testing.T) {
	tf := newTestFleet(t, 2, nil)
	hdr := http.Header{}
	hdr.Set(RequestIDHeader, "gw-exemplar-5")
	if rec := tf.do(t, http.MethodPost, "/v1/predict", predictBody, hdr); rec.Code != http.StatusOK {
		t.Fatalf("predict = %d", rec.Code)
	}

	var buf bytes.Buffer
	tf.gw.WriteMetrics(&buf)
	text := buf.String()
	for _, want := range []string{
		"# TYPE numaiogw_request_seconds histogram",
		"numaiogw_request_seconds_count 1",
		`# {request_id="gw-exemplar-5"}`,
		"# TYPE numaiogw_trace_active gauge",
		"numaiogw_flight_events",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("gateway metrics missing %q", want)
		}
	}
	var again bytes.Buffer
	tf.gw.WriteMetrics(&again)
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two back-to-back gateway metrics renders differ while idle")
	}
}
