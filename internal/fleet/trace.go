package fleet

import (
	"context"
	"net/http"
	"time"

	"numaio/internal/telemetry"
)

// Gateway-side observability endpoints, mirroring numaiod's: the
// /debug/trace lifecycle records the gateway's own request and failover
// spans as Chrome trace-event JSON (stitched with replica recordings by
// cmd/numaiotrace into one fleet timeline), and /debug/flightrecorder
// dumps the always-on ring of recent forwards.

type traceStateResponse struct {
	Tracing bool `json:"tracing"`
	Events  int  `json:"events"`
}

func (g *Gateway) handleTraceStart(w http.ResponseWriter, r *http.Request) {
	g.traces.Start()
	writeGatewayJSON(w, http.StatusOK, traceStateResponse{Tracing: true})
}

func (g *Gateway) handleTraceStop(w http.ResponseWriter, r *http.Request) {
	writeGatewayJSON(w, http.StatusOK, traceStateResponse{Events: g.traces.Stop().Len()})
}

func (g *Gateway) handleTraceDownload(w http.ResponseWriter, r *http.Request) {
	tr := g.traces.Current()
	if tr == nil {
		writeGatewayError(w, http.StatusNotFound, "no trace recorded: POST /debug/trace/start first")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="numaiogw-trace.json"`)
	if err := tr.WriteJSON(w); err != nil {
		g.log.Error("writing trace", "error", err)
	}
}

func (g *Gateway) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	if g.flight == nil {
		writeGatewayError(w, http.StatusNotFound, "flight recorder disabled")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := g.flight.WriteJSON(w); err != nil {
		g.log.Error("writing flight recorder", "error", err)
	}
}

// recordFailover leaves a flight-recorder event (and a trace instant, when
// recording) for one failed forward attempt — the breadcrumb trail a
// kill-owner incident leaves behind.
func (g *Gateway) recordFailover(endpoint, replica, rid string, ctx context.Context) {
	var traceID string
	if tc, ok := telemetry.TraceFromContext(ctx); ok {
		traceID = tc.TraceID
	}
	g.flight.Record(telemetry.FlightEvent{
		Time:    time.Now().UnixNano(),
		Name:    "failover",
		Cat:     "resilience",
		RID:     rid,
		TraceID: traceID,
		Detail:  "endpoint=" + endpoint + " replica=" + replica,
	})
	g.traces.Active().Instant("failover", "resilience",
		telemetry.String("endpoint", endpoint),
		telemetry.String("replica", replica))
}
