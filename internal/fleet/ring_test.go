package fleet

import (
	"fmt"
	"testing"
)

// keys returns count synthetic fingerprints.
func keys(count int) []string {
	out := make([]string, count)
	for i := range out {
		out[i] = fmt.Sprintf("sha256:%064d", i)
	}
	return out
}

// TestRingDeterministicOwnership: ownership is a pure function of the
// member set — independent of construction order and stable across ring
// rebuilds (the process-restart property: a restarted gateway must agree
// with its precursor and with every other gateway).
func TestRingDeterministicOwnership(t *testing.T) {
	a, err := NewRing([]string{"r0", "r1", "r2"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"r2", "r0", "r1"}, 64) // shuffled input
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(1000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %s: owner %s vs %s under reordered construction", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingOwnershipGolden pins concrete owners so a future hash or
// ring-layout change that silently reshuffles the fleet fails loudly.
// FNV-1a is platform- and process-independent, so these values hold on
// every machine and every restart.
func TestRingOwnershipGolden(t *testing.T) {
	r, err := NewRing([]string{"r0", "r1", "r2"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, k := range []string{"alpha", "bravo", "charlie", "delta"} {
		got[k] = r.Owner(k)
	}
	want := map[string]string{"alpha": "r1", "bravo": "r1", "charlie": "r2", "delta": "r1"}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("Owner(%q) = %s, want %s (ring layout changed — this reshuffles live fleets)", k, got[k], w)
		}
	}
}

// TestRingBoundedMovement: removing one of N members moves strictly fewer
// than 2/N of the keys, and only keys the departed member owned — the
// consistent-hashing minimal-movement guarantee that makes membership
// changes cheap.
func TestRingBoundedMovement(t *testing.T) {
	members := []string{"r0", "r1", "r2", "r3", "r4"}
	n := len(members)
	before, err := NewRing(members, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing([]string{"r0", "r1", "r3", "r4"}, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	ks := keys(4000)
	moved := 0
	for _, k := range ks {
		was, is := before.Owner(k), after.Owner(k)
		if was == is {
			continue
		}
		moved++
		if was != "r2" {
			t.Fatalf("key %s moved from surviving member %s to %s — movement is not minimal", k, was, is)
		}
	}
	if limit := 2 * len(ks) / n; moved >= limit {
		t.Errorf("%d of %d keys moved when 1 of %d members left; want < %d (2/N)", moved, len(ks), n, limit)
	}
	if moved == 0 {
		t.Error("no keys moved — the departed member owned nothing, ring is degenerate")
	}
}

// TestRingBalance: virtual nodes spread ownership; no member of five owns
// more than double or less than half its fair share over 4000 keys.
func TestRingBalance(t *testing.T) {
	members := []string{"r0", "r1", "r2", "r3", "r4"}
	r, err := NewRing(members, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	ks := keys(4000)
	for _, k := range ks {
		counts[r.Owner(k)]++
	}
	fair := len(ks) / len(members)
	for _, m := range members {
		if counts[m] < fair/2 || counts[m] > fair*2 {
			t.Errorf("member %s owns %d keys, fair share %d — vnode distribution is skewed", m, counts[m], fair)
		}
	}
}

// TestRingOwners: the replica preference list is distinct, starts at the
// owner, and clamps to the member count.
func TestRingOwners(t *testing.T) {
	r, err := NewRing([]string{"r0", "r1", "r2"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(200) {
		owners := r.Owners(k, 2)
		if len(owners) != 2 || owners[0] != r.Owner(k) || owners[0] == owners[1] {
			t.Fatalf("Owners(%s, 2) = %v (owner %s)", k, owners, r.Owner(k))
		}
		all := r.Owners(k, 99)
		if len(all) != 3 {
			t.Fatalf("Owners(%s, 99) = %v, want all 3 members", k, all)
		}
		seen := map[string]bool{}
		for _, m := range all {
			if seen[m] {
				t.Fatalf("Owners(%s, 99) repeats %s", k, m)
			}
			seen[m] = true
		}
	}
}

// TestRingValidation: empty and duplicate member sets are rejected.
func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 8); err == nil {
		t.Error("empty member set accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 8); err == nil {
		t.Error("duplicate members accepted")
	}
	if _, err := NewRing([]string{""}, 8); err == nil {
		t.Error("empty member name accepted")
	}
}
