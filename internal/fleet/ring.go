// Package fleet shards model fingerprints across a set of numaiod
// replicas — the datacenter-scale analog of the paper's bandwidth-aware
// placement. One daemon caches models for one fingerprint set; a fleet of
// them behind the numaiogw gateway serves many. The pieces:
//
//   - Ring: a consistent-hash ring with virtual nodes. Ownership is a pure
//     function of the member set, so every gateway (and every restart)
//     agrees on placement, and membership changes move only the keys the
//     departed member owned (~1/N of the keyspace).
//   - Membership: the static replica set from a JSON config, actively
//     health-checked with per-replica circuit breakers (internal/resilience)
//     so routing skips dead replicas between probes.
//   - Gateway: an HTTP handler terminating the numaiod v1 API. It routes
//     each request to the owning replica by fingerprint, proxies to ring
//     successors when the owner is down, replicates hot models to peers for
//     read availability, and fans /v1/fleet/place out to every healthy
//     replica to find the best (host, node) in the fleet by predicted
//     bandwidth.
//
// See docs/FLEET.md for the full design and degradation semantics.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per member when a config leaves
// it unset: enough points that per-member load imbalance stays within a
// few percent and key movement on a leave stays near 1/N.
const DefaultVNodes = 128

// ringPoint is one virtual node: the hash position and the member that
// owns the arc ending there.
type ringPoint struct {
	hash   uint64
	member string
}

// Ring is a consistent-hash ring over named members. Construction is
// deterministic: the same member set (in any order) and vnode count yield
// the same ring, so ownership survives process restarts and is identical
// on every gateway replica.
type Ring struct {
	vnodes  int
	members []string // sorted, unique
	points  []ringPoint
}

// ringHash is FNV-1a 64 pushed through a murmur-style finalizer — stable
// across processes and platforms (unlike Go's seeded map hash), with the
// avalanche FNV alone lacks: sequential vnode labels ("r3#17", "r3#18")
// must land uniformly around the ring or per-member load skews badly.
// Same idiom as the avalanched draw hash in internal/faults.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// NewRing builds a ring over members with the given virtual-node count per
// member (vnodes < 1 means DefaultVNodes). Member names must be non-empty
// and unique.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("fleet: ring needs at least one member")
	}
	if vnodes < 1 {
		vnodes = DefaultVNodes
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	for i, m := range sorted {
		if m == "" {
			return nil, fmt.Errorf("fleet: empty member name")
		}
		if i > 0 && sorted[i-1] == m {
			return nil, fmt.Errorf("fleet: duplicate member %q", m)
		}
	}
	r := &Ring{
		vnodes:  vnodes,
		members: sorted,
		points:  make([]ringPoint, 0, len(sorted)*vnodes),
	}
	for _, m := range sorted {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash:   ringHash(m + "#" + strconv.Itoa(i)),
				member: m,
			})
		}
	}
	// Ties broken by member name so ring order never depends on input
	// order even in the (astronomically unlikely) event of a hash collision.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// Members returns the member names in sorted order.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Points returns the virtual-node count on the ring.
func (r *Ring) Points() int { return len(r.points) }

// search returns the index of the first ring point at or clockwise of
// key's hash (wrapping past the top).
func (r *Ring) search(key string) int {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Owner returns the member owning key.
func (r *Ring) Owner(key string) string {
	return r.points[r.search(key)].member
}

// Owners returns up to n distinct members for key in ring-walk order: the
// owner first, then the successors a replication factor of n would use.
// n > Len() is clamped, so Owners(key, Len()) is every member ordered by
// preference for that key — the gateway's failover order.
func (r *Ring) Owners(key string, n int) []string {
	if n < 1 {
		n = 1
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i, start := 0, r.search(key); len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}
