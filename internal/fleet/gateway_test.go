package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"numaio/internal/cli"
	"numaio/internal/service"
	"numaio/internal/topology"
)

// predictBody is a cheap predict request (one repeat, no noise) the unit
// tests route through the gateway.
const predictBody = `{"machine": "intel-4s4n", "config": {"repeats": 1, "sigma": -1},
                      "target": 0, "mode": "write", "mix": {"0": 0.5, "2": 0.5}}`

// testFleet boots n real in-process numaiod replicas named r0..r(n-1) and
// a gateway over them.
type testFleet struct {
	gw       *Gateway
	services map[string]*service.Server
	servers  map[string]*httptest.Server
}

func newTestFleet(t *testing.T, n int, mutate func(*Config)) *testFleet {
	t.Helper()
	tf := &testFleet{
		services: make(map[string]*service.Server, n),
		servers:  make(map[string]*httptest.Server, n),
	}
	cfg := &Config{VNodes: 32}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("r%d", i)
		svc := service.New(service.Config{Workers: 2})
		ts := httptest.NewServer(svc.Handler())
		t.Cleanup(ts.Close)
		tf.services[name] = svc
		tf.servers[name] = ts
		cfg.Replicas = append(cfg.Replicas, Replica{Name: name, URL: ts.URL})
	}
	if mutate != nil {
		mutate(cfg)
	}
	gw, err := NewGateway(GatewayConfig{Fleet: cfg})
	if err != nil {
		t.Fatal(err)
	}
	tf.gw = gw
	return tf
}

// do sends one request through the gateway handler.
func (tf *testFleet) do(t *testing.T, method, path, body string, header http.Header) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	rec := httptest.NewRecorder()
	tf.gw.Handler().ServeHTTP(rec, req)
	return rec
}

// fingerprintOf resolves the shard key the gateway derives for a named
// machine profile.
func fingerprintOf(t *testing.T, machine string) string {
	t.Helper()
	m, err := cli.Machine(machine)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := topology.Fingerprint(m)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

// TestGatewayRoutesToOwner: a predict lands on exactly the replica owning
// the machine's fingerprint, and counts as routed, not proxied.
func TestGatewayRoutesToOwner(t *testing.T) {
	tf := newTestFleet(t, 3, nil)
	owner := tf.gw.Ring().Owner(fingerprintOf(t, "intel-4s4n"))

	rec := tf.do(t, http.MethodPost, "/v1/predict", predictBody, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("predict = %d: %s", rec.Code, rec.Body)
	}
	for name, svc := range tf.services {
		want := int64(0)
		if name == owner {
			want = 1
		}
		if got := svc.Metrics().RequestCount("/v1/predict"); got != want {
			t.Errorf("replica %s saw %d predicts, want %d (owner %s)", name, got, want, owner)
		}
	}
	if tf.gw.routed.Value() != 1 || tf.gw.proxied.Value() != 0 {
		t.Errorf("routed/proxied = %d/%d, want 1/0", tf.gw.routed.Value(), tf.gw.proxied.Value())
	}
}

// TestGatewayFailoverProxies: with the owner dead, the request lands on a
// ring successor — degraded but serving — and counts as proxied.
func TestGatewayFailoverProxies(t *testing.T) {
	tf := newTestFleet(t, 3, nil)
	owner := tf.gw.Ring().Owner(fingerprintOf(t, "intel-4s4n"))
	tf.servers[owner].Close()

	rec := tf.do(t, http.MethodPost, "/v1/predict", predictBody, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("predict with dead owner = %d: %s", rec.Code, rec.Body)
	}
	if tf.gw.proxied.Value() != 1 {
		t.Errorf("proxied = %d, want 1", tf.gw.proxied.Value())
	}
	if tf.gw.fwdErrors.Value() == 0 {
		t.Error("no forward error recorded for the dead owner")
	}
	// The successor, not some arbitrary replica, absorbed the key.
	successor := tf.gw.Ring().Owners(fingerprintOf(t, "intel-4s4n"), 2)[1]
	if got := tf.services[successor].Metrics().RequestCount("/v1/predict"); got != 1 {
		t.Errorf("ring successor %s saw %d predicts, want 1", successor, got)
	}
}

// TestGatewayAllReplicasDown: every replica dead is a 502, not a hang or
// a panic.
func TestGatewayAllReplicasDown(t *testing.T) {
	tf := newTestFleet(t, 2, nil)
	for _, ts := range tf.servers {
		ts.Close()
	}
	rec := tf.do(t, http.MethodPost, "/v1/predict", predictBody, nil)
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("predict with all replicas dead = %d, want 502", rec.Code)
	}
}

// TestGatewayRequestID: an incoming X-Request-Id reaches the replica and
// the response; absent one, the gateway assigns an ID of its own.
func TestGatewayRequestID(t *testing.T) {
	var seen []string
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = append(seen, r.Header.Get(RequestIDHeader))
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok": true}`)
	}))
	defer fake.Close()
	cfg := &Config{Replicas: []Replica{{Name: "r0", URL: fake.URL}}, VNodes: 8}
	gw, err := NewGateway(GatewayConfig{Fleet: cfg})
	if err != nil {
		t.Fatal(err)
	}

	req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(predictBody))
	req.Header.Set(RequestIDHeader, "trace-me-42")
	rec := httptest.NewRecorder()
	gw.Handler().ServeHTTP(rec, req)
	if len(seen) != 1 || seen[0] != "trace-me-42" {
		t.Errorf("replica saw request IDs %v, want [trace-me-42]", seen)
	}
	if got := rec.Header().Get(RequestIDHeader); got != "trace-me-42" {
		t.Errorf("response request ID = %q", got)
	}

	seen = nil
	rec = httptest.NewRecorder()
	gw.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(predictBody)))
	if len(seen) != 1 || !strings.HasPrefix(seen[0], "gw-") {
		t.Errorf("generated request ID %v, want gw- prefix", seen)
	}
	if rec.Header().Get(RequestIDHeader) != seen[0] {
		t.Errorf("response ID %q != forwarded ID %q", rec.Header().Get(RequestIDHeader), seen[0])
	}
}

// TestGatewayHotReplication: once a fingerprint crosses the hot threshold,
// its model is pulled onto the next ring owner, so a fingerprint-addressed
// read survives the owner dying.
func TestGatewayHotReplication(t *testing.T) {
	tf := newTestFleet(t, 3, func(cfg *Config) {
		cfg.Replication = 2
		cfg.HotThreshold = 2
	})
	fp := fingerprintOf(t, "intel-4s4n")
	owner := tf.gw.Ring().Owner(fp)
	peer := tf.gw.Ring().Owners(fp, 2)[1]

	// First request: below threshold, no replication yet.
	if rec := tf.do(t, http.MethodPost, "/v1/predict", predictBody, nil); rec.Code != http.StatusOK {
		t.Fatalf("predict 1 = %d: %s", rec.Code, rec.Body)
	}
	if _, ok := tf.services[peer].Cache().FindByFingerprint(fp); ok {
		t.Fatal("model replicated before the hot threshold")
	}
	// Second request crosses the threshold; replication is synchronous.
	if rec := tf.do(t, http.MethodPost, "/v1/predict", predictBody, nil); rec.Code != http.StatusOK {
		t.Fatalf("predict 2 = %d: %s", rec.Code, rec.Body)
	}
	if _, ok := tf.services[peer].Cache().FindByFingerprint(fp); !ok {
		t.Fatalf("peer %s (owner %s) did not receive the hot model", peer, owner)
	}
	if tf.gw.pulls.Value() != 1 {
		t.Errorf("replication pulls = %d, want 1", tf.gw.pulls.Value())
	}

	// Kill the owner: a fingerprint-addressed predict now proxies to the
	// peer and hits its replicated model — the read-availability payoff.
	tf.servers[owner].Close()
	byFP := fmt.Sprintf(`{"fingerprint": %q, "target": 0, "mode": "write", "mix": {"0": 0.5, "2": 0.5}}`, fp)
	rec := tf.do(t, http.MethodPost, "/v1/predict", byFP, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("fingerprint predict after owner death = %d: %s", rec.Code, rec.Body)
	}
}

// fakePlaceReplica builds a replica stub answering /v1/place with a fixed
// estimate and /healthz OK.
func fakePlaceReplica(t *testing.T, node int, bps float64) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprintln(w, "ok")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"fingerprint": "fp-fake", "results": [
			{"policy": "class-balanced", "placement": [%d], "estimate_bps": %g}]}`, node, bps)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestFleetPlaceBestAndTieBreak: the fan-out picks the host with the
// highest predicted bandwidth; exact ties break to the lexicographically
// smallest host name so equal hosts place deterministically.
func TestFleetPlaceBestAndTieBreak(t *testing.T) {
	cases := []struct {
		name     string
		bps      map[string]float64
		wantHost string
	}{
		{"clear winner", map[string]float64{"ra": 100, "rb": 300, "rc": 200}, "rb"},
		{"two-way tie", map[string]float64{"ra": 300, "rb": 300, "rc": 200}, "ra"},
		{"all equal", map[string]float64{"ra": 250, "rb": 250, "rc": 250}, "ra"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := &Config{VNodes: 8}
			for _, name := range []string{"rc", "rb", "ra"} { // shuffled config order
				ts := fakePlaceReplica(t, 3, tc.bps[name])
				cfg.Replicas = append(cfg.Replicas, Replica{Name: name, URL: ts.URL})
			}
			gw, err := NewGateway(GatewayConfig{Fleet: cfg})
			if err != nil {
				t.Fatal(err)
			}
			req := httptest.NewRequest(http.MethodPost, "/v1/fleet/place",
				strings.NewReader(`{"machine": "intel-4s4n", "target": 0}`))
			rec := httptest.NewRecorder()
			gw.Handler().ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Fatalf("fleet place = %d: %s", rec.Code, rec.Body)
			}
			var resp fleetPlaceResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatal(err)
			}
			if resp.Host != tc.wantHost {
				t.Errorf("best host = %s, want %s (per-host %+v)", resp.Host, tc.wantHost, resp.PerHost)
			}
			if resp.Node != 3 || resp.Degraded || resp.Responses != 3 {
				t.Errorf("node/degraded/responses = %d/%t/%d", resp.Node, resp.Degraded, resp.Responses)
			}
			if resp.PredictedBPS != tc.bps[tc.wantHost] {
				t.Errorf("predicted = %g, want %g", resp.PredictedBPS, tc.bps[tc.wantHost])
			}
		})
	}
}

// TestFleetPlaceDegraded: a dead replica degrades the fan-out but the
// placement still stands over the survivors.
func TestFleetPlaceDegraded(t *testing.T) {
	cfg := &Config{VNodes: 8}
	live := fakePlaceReplica(t, 5, 100)
	dead := httptest.NewServer(http.HandlerFunc(nil))
	dead.Close()
	cfg.Replicas = []Replica{
		{Name: "live", URL: live.URL},
		{Name: "dead", URL: dead.URL},
	}
	gw, err := NewGateway(GatewayConfig{Fleet: cfg})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/fleet/place",
		strings.NewReader(`{"machine": "intel-4s4n", "target": 0}`))
	rec := httptest.NewRecorder()
	gw.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded fleet place = %d: %s", rec.Code, rec.Body)
	}
	var resp fleetPlaceResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || resp.Host != "live" || resp.Node != 5 || resp.Responses != 1 {
		t.Errorf("degraded place = %+v", resp)
	}
}

// TestShardKey: an explicit fingerprint wins over the machine; malformed
// bodies fail before any forward.
func TestShardKey(t *testing.T) {
	key, err := shardKey([]byte(`{"fingerprint": "fp-explicit", "machine": "intel-4s4n"}`))
	if err != nil || key != "fp-explicit" {
		t.Errorf("shardKey = %q, %v", key, err)
	}
	key, err = shardKey([]byte(`{"machine": "intel-4s4n", "target": 3}`))
	if err != nil || key != fingerprintOf(t, "intel-4s4n") {
		t.Errorf("machine shardKey = %q, %v", key, err)
	}
	if _, err := shardKey([]byte(`{"machine": "no-such-profile"}`)); err == nil {
		t.Error("unknown machine accepted")
	}
	if _, err := shardKey([]byte(`{broken`)); err == nil {
		t.Error("malformed body accepted")
	}
}

// TestGatewayMetricsAndStatus: the metric families and the status endpoint
// render the ring and membership state.
func TestGatewayMetricsAndStatus(t *testing.T) {
	tf := newTestFleet(t, 3, func(cfg *Config) { cfg.Replication = 2 })
	if rec := tf.do(t, http.MethodPost, "/v1/predict", predictBody, nil); rec.Code != http.StatusOK {
		t.Fatalf("predict = %d: %s", rec.Code, rec.Body)
	}
	rec := tf.do(t, http.MethodGet, "/metrics", "", nil)
	text := rec.Body.String()
	for _, want := range []string{
		"numaiogw_replicas 3",
		"numaiogw_ring_points 96",
		"numaiogw_replicas_healthy 3",
		"numaiogw_breaker_open 0",
		`numaiogw_replica_healthy{replica="r0"} 1`,
		"numaiogw_routed_total 1",
		"numaiogw_proxied_total 0",
		`numaiogw_requests_total{endpoint="/v1/predict",status="200"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}

	rec = tf.do(t, http.MethodGet, "/v1/fleet/status", "", nil)
	var st fleetStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.RingMembers != 3 || st.Replication != 2 || len(st.Replicas) != 3 {
		t.Errorf("status = %+v", st)
	}
	for _, rep := range st.Replicas {
		if !rep.Available || rep.Breaker != "closed" {
			t.Errorf("replica %s: available=%t breaker=%s", rep.Name, rep.Available, rep.Breaker)
		}
	}
}
