package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"numaio/internal/resilience"
)

// TestParseConfig covers validation and URL normalization.
func TestParseConfig(t *testing.T) {
	good := `{"replicas": [{"name": "a", "url": "http://a:1/"}, {"name": "b", "url": "http://b:2"}],
	          "vnodes": 32, "replication": 2, "hot_threshold": 4}`
	cfg, err := ParseConfig(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Replicas[0].URL != "http://a:1" {
		t.Errorf("trailing slash not stripped: %q", cfg.Replicas[0].URL)
	}
	if cfg.VNodes != 32 || cfg.Replication != 2 || cfg.HotThreshold != 4 {
		t.Errorf("tuning = %+v", cfg)
	}
	for _, bad := range []string{
		`{}`,
		`{"replicas": []}`,
		`{"replicas": [{"name": "", "url": "http://a:1"}]}`,
		`{"replicas": [{"name": "a", "url": ""}]}`,
		`{"replicas": [{"name": "a", "url": "http://a:1"}, {"name": "a", "url": "http://b:2"}]}`,
		`{"replicas": [{"name": "a", "url": "http://a:1"}], "surprise": true}`,
		`not json`,
	} {
		if _, err := ParseConfig(strings.NewReader(bad)); err == nil {
			t.Errorf("config %s accepted", bad)
		}
	}
}

// TestMembershipHealthCheck: a live replica stays available, a dead one is
// pulled out after one probe, and a recovered one comes back.
func TestMembershipHealthCheck(t *testing.T) {
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			t.Errorf("probe hit %s, want /healthz", r.URL.Path)
		}
	}))
	defer up.Close()
	down := httptest.NewServer(http.HandlerFunc(nil))
	down.Close() // already dead

	m := NewMembership([]Replica{
		{Name: "up", URL: up.URL},
		{Name: "down", URL: down.URL},
	}, 3, time.Minute, nil, nil)

	// Optimistic before any probe: both routable.
	if !m.Available("up") || !m.Available("down") {
		t.Error("replicas not optimistic at boot")
	}

	m.CheckNow(context.Background())
	if !m.Available("up") {
		t.Error("live replica marked unavailable")
	}
	if m.Available("down") {
		t.Error("dead replica still available after probe")
	}
	if avail, _ := m.Counts(); avail != 1 {
		t.Errorf("available = %d, want 1", avail)
	}
}

// TestMembershipForwardFailuresOpenBreaker: enough forward failures open
// the replica's breaker without waiting for a probe, and a successful
// probe closes it again.
func TestMembershipForwardFailuresOpenBreaker(t *testing.T) {
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer up.Close()

	clock := resilience.NewFakeClock(time.Unix(0, 0))
	m := NewMembership([]Replica{{Name: "a", URL: up.URL}}, 2, time.Hour, clock, nil)

	m.ReportFailure("a")
	if !m.Available("a") {
		t.Error("one failure below threshold already unavailable")
	}
	m.ReportFailure("a")
	if m.Available("a") {
		t.Error("breaker did not open after threshold failures")
	}
	if _, open := m.Counts(); open != 1 {
		t.Errorf("open breakers = %d, want 1", open)
	}
	if m.BreakerState("a") != resilience.BreakerOpen {
		t.Errorf("breaker state = %v", m.BreakerState("a"))
	}

	// A successful health probe closes the breaker and restores routing.
	m.CheckNow(context.Background())
	if !m.Available("a") {
		t.Error("replica not restored after successful probe")
	}
}
