package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"numaio/internal/resilience"
)

// Replica is one numaiod instance of the fleet.
type Replica struct {
	// Name is the stable identity hashed onto the ring. Renaming a replica
	// moves its keys; changing only its URL does not.
	Name string `json:"name"`
	// URL is the replica's base URL, e.g. http://127.0.0.1:8081.
	URL string `json:"url"`
}

// Config is the static fleet membership file (JSON): the replica set plus
// the ring and replication tuning. Membership is deliberately static —
// deterministic placement and smoke-testable failover first; gossip is a
// later problem.
type Config struct {
	Replicas []Replica `json:"replicas"`
	// VNodes is the virtual-node count per replica; 0 means DefaultVNodes.
	VNodes int `json:"vnodes,omitempty"`
	// Replication is the total copies of a hot model (owner + peers);
	// 0 or 1 disables peer replication.
	Replication int `json:"replication,omitempty"`
	// HotThreshold is how many routed requests a fingerprint takes before
	// the gateway replicates its model to peers; 0 means 8, negative
	// disables hot-model replication.
	HotThreshold int `json:"hot_threshold,omitempty"`
}

// ParseConfig decodes and validates a fleet config.
func ParseConfig(r io.Reader) (*Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var cfg Config
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("fleet: invalid config: %w", err)
	}
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("fleet: config has no replicas")
	}
	seen := make(map[string]bool, len(cfg.Replicas))
	for i := range cfg.Replicas {
		rep := &cfg.Replicas[i]
		if rep.Name == "" {
			return nil, fmt.Errorf("fleet: replica %d has no name", i)
		}
		if seen[rep.Name] {
			return nil, fmt.Errorf("fleet: duplicate replica name %q", rep.Name)
		}
		seen[rep.Name] = true
		if rep.URL == "" {
			return nil, fmt.Errorf("fleet: replica %q has no url", rep.Name)
		}
		rep.URL = strings.TrimRight(rep.URL, "/")
	}
	return &cfg, nil
}

// LoadConfig reads a fleet config file.
func LoadConfig(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseConfig(f)
}

// replicaState is one replica's availability: the last active health-probe
// outcome plus a circuit breaker fed by both probes and forward failures,
// so a replica that dies between probes stops receiving traffic after a
// few failed forwards instead of a full health interval.
type replicaState struct {
	replica Replica
	breaker *resilience.Breaker
	mu      sync.Mutex
	healthy bool
}

// Membership tracks which replicas of the static set are currently
// routable. It is optimistic at boot (every replica starts healthy) so a
// cold gateway routes immediately; the first probe round corrects it.
type Membership struct {
	replicas []*replicaState // config order
	byName   map[string]*replicaState
	client   *http.Client

	// OnBreakerOpen, when set, is called with the replica name each time a
	// recorded failure is the one that opens its breaker — the gateway hangs
	// its flight-recorder breadcrumb and automatic dump off this. Set it
	// before the first probe or forward; it may be called from any of them.
	OnBreakerOpen func(name string)
}

// NewMembership builds the tracker. threshold consecutive failures open a
// replica's breaker (0 means 3); cooldown is the open period before a
// probe is readmitted (0 means 10s). A nil client gets a 5s timeout; a nil
// clock means the system clock (tests inject fakes).
func NewMembership(replicas []Replica, threshold int, cooldown time.Duration, clock resilience.Clock, client *http.Client) *Membership {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 10 * time.Second
	}
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	m := &Membership{byName: make(map[string]*replicaState, len(replicas)), client: client}
	for _, rep := range replicas {
		st := &replicaState{
			replica: rep,
			breaker: resilience.NewBreaker(threshold, cooldown, clock),
			healthy: true,
		}
		m.replicas = append(m.replicas, st)
		m.byName[rep.Name] = st
	}
	return m
}

// CheckNow probes every replica's /healthz once, synchronously, updating
// health state and breakers. The background loop (Run) calls it each
// interval; tests call it directly.
func (m *Membership) CheckNow(ctx context.Context) {
	for _, st := range m.replicas {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, st.replica.URL+"/healthz", nil)
		if err != nil {
			m.observe(st, false)
			continue
		}
		resp, err := m.client.Do(req)
		ok := err == nil && resp.StatusCode == http.StatusOK
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		m.observe(st, ok)
	}
}

// Run probes every interval until ctx is done.
func (m *Membership) Run(ctx context.Context, clock resilience.Clock, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	if clock == nil {
		clock = resilience.SystemClock{}
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-clock.After(interval):
			m.CheckNow(ctx)
		}
	}
}

func (m *Membership) observe(st *replicaState, ok bool) {
	st.mu.Lock()
	st.healthy = ok
	st.mu.Unlock()
	if ok {
		st.breaker.Success()
	} else {
		m.noteFailure(st)
	}
}

// noteFailure records one failure on st's breaker and fires OnBreakerOpen
// when that failure is the one that opened it.
func (m *Membership) noteFailure(st *replicaState) {
	before := st.breaker.State()
	st.breaker.Failure()
	if m.OnBreakerOpen != nil && before != resilience.BreakerOpen && st.breaker.State() == resilience.BreakerOpen {
		m.OnBreakerOpen(st.replica.Name)
	}
}

// ReportSuccess records a successful forward to the named replica,
// closing its breaker.
func (m *Membership) ReportSuccess(name string) {
	if st, ok := m.byName[name]; ok {
		st.breaker.Success()
	}
}

// ReportFailure records a failed forward to the named replica. Enough
// consecutive failures open its breaker and pull it out of rotation until
// a health probe succeeds.
func (m *Membership) ReportFailure(name string) {
	if st, ok := m.byName[name]; ok {
		m.noteFailure(st)
	}
}

// Available reports whether the named replica is routable: its last probe
// succeeded (or none ran yet) and its breaker is not open.
func (m *Membership) Available(name string) bool {
	st, ok := m.byName[name]
	if !ok {
		return false
	}
	st.mu.Lock()
	healthy := st.healthy
	st.mu.Unlock()
	return healthy && st.breaker.State() != resilience.BreakerOpen
}

// Replica returns the named replica's config entry.
func (m *Membership) Replica(name string) (Replica, bool) {
	st, ok := m.byName[name]
	if !ok {
		return Replica{}, false
	}
	return st.replica, true
}

// Replicas returns every replica in config order.
func (m *Membership) Replicas() []Replica {
	out := make([]Replica, len(m.replicas))
	for i, st := range m.replicas {
		out[i] = st.replica
	}
	return out
}

// Counts returns (available, open-breaker) replica counts — the
// numaiogw_replicas_healthy and numaiogw_breaker_open gauges.
func (m *Membership) Counts() (available, open int) {
	for _, st := range m.replicas {
		if m.Available(st.replica.Name) {
			available++
		}
		if st.breaker.State() == resilience.BreakerOpen {
			open++
		}
	}
	return available, open
}

// BreakerState returns the named replica's breaker position (status
// endpoint and tests).
func (m *Membership) BreakerState(name string) resilience.BreakerState {
	st, ok := m.byName[name]
	if !ok {
		return resilience.BreakerClosed
	}
	return st.breaker.State()
}
