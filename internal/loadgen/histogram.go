package loadgen

import "numaio/internal/telemetry"

// Histogram is the shared HDR-style log-linear latency histogram; the
// implementation lives in internal/telemetry so the daemon and the load
// generator report quantiles from one code path.
type Histogram = telemetry.Histogram

// NewHistogram builds an empty histogram.
func NewHistogram() *Histogram { return telemetry.NewHistogram() }
