// Package loadgen is the serving-path load harness behind cmd/numaioload:
// a concurrent closed-loop request driver whose per-worker latencies land
// in an HDR-style log-linear histogram, merged into one report of RPS and
// p50/p95/p99 latency. The histogram is allocation-free per record, so the
// harness itself does not distort the latencies it measures.
package loadgen

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Config shapes one load run. Exactly what "one request" means is the
// caller's Do closure, keeping the driver protocol-agnostic (cmd/numaioload
// wires in HTTP posts; tests use stubs).
type Config struct {
	// Concurrency is the number of closed-loop workers; <= 0 means 1.
	Concurrency int
	// Requests caps the total request count; <= 0 means no cap (Duration
	// alone stops the run).
	Requests int
	// Duration caps the wall time; <= 0 means no cap (Requests alone stops
	// the run). At least one cap must be set.
	Duration time.Duration
	// Do issues one request and reports its failure. Must be safe for
	// concurrent use.
	Do func() error
}

// Result is the merged outcome of a load run.
type Result struct {
	Requests int64
	Errors   int64
	Duration time.Duration
	// RPS counts completed requests (successes and failures) per second of
	// wall time.
	RPS           float64
	P50, P95, P99 time.Duration
	Max           time.Duration
	// Hist is the merged latency histogram for further quantiles.
	Hist *Histogram
}

// Run drives Do from Concurrency workers until a cap is hit and merges the
// per-worker latency histograms.
func Run(cfg Config) (*Result, error) {
	if cfg.Do == nil {
		return nil, fmt.Errorf("loadgen: Do is required")
	}
	if cfg.Requests <= 0 && cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: either Requests or Duration must be set")
	}
	workers := cfg.Concurrency
	if workers <= 0 {
		workers = 1
	}

	var quota atomic.Int64 // remaining requests; negative means unlimited
	if cfg.Requests > 0 {
		quota.Store(int64(cfg.Requests))
	} else {
		quota.Store(1 << 62)
	}
	deadline := make(chan struct{})
	var stopTimer *time.Timer
	if cfg.Duration > 0 {
		stopTimer = time.AfterFunc(cfg.Duration, func() { close(deadline) })
		defer stopTimer.Stop()
	}

	type workerState struct {
		hist   *Histogram
		errors int64
	}
	states := make([]workerState, workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(st *workerState) {
			defer wg.Done()
			st.hist = NewHistogram()
			for {
				select {
				case <-deadline:
					return
				default:
				}
				if quota.Add(-1) < 0 {
					return
				}
				t0 := time.Now()
				err := cfg.Do()
				st.hist.Record(time.Since(t0))
				if err != nil {
					st.errors++
				}
			}
		}(&states[w])
	}
	wg.Wait()
	elapsed := time.Since(start)

	merged := NewHistogram()
	res := &Result{Duration: elapsed, Hist: merged}
	for i := range states {
		merged.Merge(states[i].hist)
		res.Errors += states[i].errors
	}
	res.Requests = merged.Count()
	if secs := elapsed.Seconds(); secs > 0 {
		res.RPS = float64(res.Requests) / secs
	}
	res.P50 = merged.Quantile(0.50)
	res.P95 = merged.Quantile(0.95)
	res.P99 = merged.Quantile(0.99)
	res.Max = merged.Max()
	return res, nil
}
