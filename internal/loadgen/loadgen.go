// Package loadgen is the serving-path load harness behind cmd/numaioload:
// a concurrent closed-loop request driver whose per-worker latencies land
// in an HDR-style log-linear histogram, merged into one report of RPS and
// p50/p95/p99 latency. The histogram is allocation-free per record, so the
// harness itself does not distort the latencies it measures.
package loadgen

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"numaio/internal/telemetry"
)

// Config shapes one load run. Exactly what "one request" means is the
// caller's Do closure, keeping the driver protocol-agnostic (cmd/numaioload
// wires in HTTP posts; tests use stubs).
type Config struct {
	// Concurrency is the number of closed-loop workers; <= 0 means 1.
	Concurrency int
	// Requests caps the total request count; <= 0 means no cap (Duration
	// alone stops the run).
	Requests int
	// Duration caps the wall time; <= 0 means no cap (Requests alone stops
	// the run). At least one cap must be set.
	Duration time.Duration
	// Do issues one request and reports its failure. Must be safe for
	// concurrent use.
	Do func() error
	// DoTagged, when set, is used instead of Do: each call receives a
	// generated request ID unique within the run, and the driver remembers
	// the ID as the latency bucket's exemplar — Result.SlowExemplars names
	// concrete requests from the slowest decile. Must be safe for
	// concurrent use.
	DoTagged func(id string) error
	// IDPrefix prefixes the generated request IDs for DoTagged runs; empty
	// means "load-".
	IDPrefix string
}

// Result is the merged outcome of a load run.
type Result struct {
	Requests int64
	Errors   int64
	Duration time.Duration
	// RPS counts completed requests (successes and failures) per second of
	// wall time.
	RPS           float64
	P50, P95, P99 time.Duration
	Max           time.Duration
	// Hist is the merged latency histogram for further quantiles.
	Hist *Histogram
	// SlowExemplars names concrete request IDs from the slowest-decile
	// latency buckets, fastest-first. Only populated for DoTagged runs.
	SlowExemplars []Exemplar
}

// Exemplar links a latency bucket back to a concrete request ID.
type Exemplar = telemetry.Exemplar

// Run drives Do from Concurrency workers until a cap is hit and merges the
// per-worker latency histograms.
func Run(cfg Config) (*Result, error) {
	if cfg.Do == nil && cfg.DoTagged == nil {
		return nil, fmt.Errorf("loadgen: Do or DoTagged is required")
	}
	if cfg.Requests <= 0 && cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: either Requests or Duration must be set")
	}
	workers := cfg.Concurrency
	if workers <= 0 {
		workers = 1
	}

	var quota atomic.Int64 // remaining requests; negative means unlimited
	if cfg.Requests > 0 {
		quota.Store(int64(cfg.Requests))
	} else {
		quota.Store(1 << 62)
	}
	deadline := make(chan struct{})
	var stopTimer *time.Timer
	if cfg.Duration > 0 {
		stopTimer = time.AfterFunc(cfg.Duration, func() { close(deadline) })
		defer stopTimer.Stop()
	}

	idPrefix := cfg.IDPrefix
	if idPrefix == "" {
		idPrefix = "load-"
	}
	var seq atomic.Int64 // shared request-ID sequence for DoTagged runs

	type workerState struct {
		hist   *Histogram
		errors int64
	}
	states := make([]workerState, workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(st *workerState) {
			defer wg.Done()
			st.hist = NewHistogram()
			for {
				select {
				case <-deadline:
					return
				default:
				}
				if quota.Add(-1) < 0 {
					return
				}
				var err error
				t0 := time.Now()
				if cfg.DoTagged != nil {
					id := idPrefix + strconv.FormatInt(seq.Add(1), 10)
					err = cfg.DoTagged(id)
					st.hist.RecordExemplar(time.Since(t0), id)
				} else {
					err = cfg.Do()
					st.hist.Record(time.Since(t0))
				}
				if err != nil {
					st.errors++
				}
			}
		}(&states[w])
	}
	wg.Wait()
	elapsed := time.Since(start)

	merged := NewHistogram()
	res := &Result{Duration: elapsed, Hist: merged}
	for i := range states {
		merged.Merge(states[i].hist)
		res.Errors += states[i].errors
	}
	res.Requests = merged.Count()
	if secs := elapsed.Seconds(); secs > 0 {
		res.RPS = float64(res.Requests) / secs
	}
	res.P50 = merged.Quantile(0.50)
	res.P95 = merged.Quantile(0.95)
	res.P99 = merged.Quantile(0.99)
	res.Max = merged.Max()
	if cfg.DoTagged != nil {
		res.SlowExemplars = merged.ExemplarsAbove(0.90)
	}
	return res, nil
}
