package loadgen

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Histogram behavior is tested in internal/telemetry, where the shared
// implementation lives.

// TestRunRequestCap: a request-capped run issues exactly that many
// requests across workers and counts errors.
func TestRunRequestCap(t *testing.T) {
	var calls, fails atomic.Int64
	res, err := Run(Config{
		Concurrency: 4,
		Requests:    100,
		Do: func() error {
			if calls.Add(1)%10 == 0 {
				fails.Add(1)
				return errors.New("boom")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 100 || res.Requests != 100 {
		t.Errorf("calls = %d, result.Requests = %d, want 100", calls.Load(), res.Requests)
	}
	if res.Errors != fails.Load() {
		t.Errorf("errors = %d, want %d", res.Errors, fails.Load())
	}
	if res.RPS <= 0 || res.P99 < res.P50 || res.Max < res.P99 {
		t.Errorf("implausible stats: %+v", res)
	}
}

// TestRunDurationCap: a duration-capped run stops near the deadline.
func TestRunDurationCap(t *testing.T) {
	res, err := Run(Config{
		Concurrency: 2,
		Duration:    50 * time.Millisecond,
		Do: func() error {
			time.Sleep(time.Millisecond)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if res.Duration > time.Second {
		t.Errorf("run overshot its deadline: %v", res.Duration)
	}
}

func TestRunConfigValidation(t *testing.T) {
	if _, err := Run(Config{Requests: 1}); err == nil {
		t.Error("nil Do should fail")
	}
	if _, err := Run(Config{Do: func() error { return nil }}); err == nil {
		t.Error("no cap should fail")
	}
}

// TestRunTagged: a DoTagged run hands every request a unique generated ID
// and surfaces slowest-decile exemplar IDs in the result.
func TestRunTagged(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[string]bool)
	var calls atomic.Int64
	res, err := Run(Config{
		Concurrency: 4,
		Requests:    80,
		IDPrefix:    "tag-",
		DoTagged: func(id string) error {
			mu.Lock()
			dup := seen[id]
			seen[id] = true
			mu.Unlock()
			if dup {
				t.Errorf("request ID %q issued twice", id)
			}
			if !strings.HasPrefix(id, "tag-") {
				t.Errorf("request ID %q lacks the configured prefix", id)
			}
			// Every ~10th request is slow, so the slowest decile is
			// populated and its exemplars point at real IDs.
			if calls.Add(1)%10 == 0 {
				time.Sleep(5 * time.Millisecond)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 80 || len(seen) != 80 {
		t.Errorf("requests = %d, distinct IDs = %d, want 80", res.Requests, len(seen))
	}
	if len(res.SlowExemplars) == 0 {
		t.Fatal("no slowest-decile exemplars surfaced")
	}
	for _, ex := range res.SlowExemplars {
		if !seen[ex.ID] {
			t.Errorf("exemplar %q names an ID no request carried", ex.ID)
		}
	}
}
