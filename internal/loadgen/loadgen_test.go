package loadgen

import (
	"errors"
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
	"time"
)

// TestBucketIndexMonotone: the log-linear mapping must be monotone and
// contiguous, and every value must fall at or below its bucket's upper
// edge.
func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for v := int64(0); v < 1<<14; v++ {
		i := bucketIndex(v)
		if i != prev && i != prev+1 {
			t.Fatalf("bucketIndex(%d) = %d jumps from %d", v, i, prev)
		}
		prev = i
		if up := bucketUpper(i); v > up {
			t.Fatalf("value %d above its bucket %d upper edge %d", v, i, up)
		}
	}
	// Spot-check large magnitudes (seconds to minutes in nanoseconds).
	for _, v := range []int64{1e6, 1e9, 6e10, 36e11} {
		i := bucketIndex(v)
		up := bucketUpper(i)
		if v > up {
			t.Errorf("value %d above bucket upper %d", v, up)
		}
		// Log-linear relative error bound: the bucket spans < 2/subCount of
		// the value.
		if lo := bucketUpper(i - 1); float64(up-lo) > float64(v)*2/subCount {
			t.Errorf("bucket span %d too wide for value %d", up-lo, v)
		}
	}
}

// TestHistogramQuantiles: quantiles of a known uniform distribution land
// within the histogram's resolution of the exact order statistics.
func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(7))
	vals := make([]int64, 10000)
	for i := range vals {
		vals[i] = rng.Int63n(int64(10 * time.Millisecond))
		h.Record(time.Duration(vals[i]))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	if h.Count() != int64(len(vals)) {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != time.Duration(vals[len(vals)-1]) {
		t.Errorf("max = %v, want %v", h.Max(), time.Duration(vals[len(vals)-1]))
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		exact := float64(vals[int(q*float64(len(vals)))])
		got := float64(h.Quantile(q))
		if got < exact*(1-4.0/subCount) || got > exact*(1+4.0/subCount) {
			t.Errorf("q%.2f = %v, exact %v: outside resolution bound", q, got, exact)
		}
	}
}

// TestHistogramMerge: merging per-worker histograms equals recording
// everything into one.
func TestHistogramMerge(t *testing.T) {
	whole, a, b := NewHistogram(), NewHistogram(), NewHistogram()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		d := time.Duration(rng.Int63n(int64(time.Second)))
		whole.Record(d)
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
	}
	a.Merge(b)
	if a.Count() != whole.Count() || a.Max() != whole.Max() || a.Mean() != whole.Mean() {
		t.Fatalf("merge mismatch: count %d/%d max %v/%v", a.Count(), whole.Count(), a.Max(), whole.Max())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 1} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Errorf("q%g: merged %v != whole %v", q, a.Quantile(q), whole.Quantile(q))
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.99) != 0 || h.Max() != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

// TestRunRequestCap: a request-capped run issues exactly that many
// requests across workers and counts errors.
func TestRunRequestCap(t *testing.T) {
	var calls, fails atomic.Int64
	res, err := Run(Config{
		Concurrency: 4,
		Requests:    100,
		Do: func() error {
			if calls.Add(1)%10 == 0 {
				fails.Add(1)
				return errors.New("boom")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 100 || res.Requests != 100 {
		t.Errorf("calls = %d, result.Requests = %d, want 100", calls.Load(), res.Requests)
	}
	if res.Errors != fails.Load() {
		t.Errorf("errors = %d, want %d", res.Errors, fails.Load())
	}
	if res.RPS <= 0 || res.P99 < res.P50 || res.Max < res.P99 {
		t.Errorf("implausible stats: %+v", res)
	}
}

// TestRunDurationCap: a duration-capped run stops near the deadline.
func TestRunDurationCap(t *testing.T) {
	res, err := Run(Config{
		Concurrency: 2,
		Duration:    50 * time.Millisecond,
		Do: func() error {
			time.Sleep(time.Millisecond)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if res.Duration > time.Second {
		t.Errorf("run overshot its deadline: %v", res.Duration)
	}
}

func TestRunConfigValidation(t *testing.T) {
	if _, err := Run(Config{Requests: 1}); err == nil {
		t.Error("nil Do should fail")
	}
	if _, err := Run(Config{Do: func() error { return nil }}); err == nil {
		t.Error("no cap should fail")
	}
}
