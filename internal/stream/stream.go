// Package stream implements the STREAM memory benchmark (McCalpin) against
// the simulated host, the way the paper uses it in Sec. IV-A: multi-threaded
// kernels pinned to a CPU node with arrays bound to a memory node, run many
// times with the maximum observed bandwidth reported.
//
// STREAM is a programmed-I/O workload: the CPU moves every element itself.
// Its fabric footprint therefore differs from DMA-driven bulk I/O — both
// directions of the CPU↔memory path carry data plus request/response
// overhead, and cache-coherent read returns are subject to the per-link PIO
// penalties. This is precisely why the paper finds STREAM-derived models
// unable to predict I/O behaviour (Sec. IV-C); the iomodel package provides
// the DMA-faithful alternative.
package stream

import (
	"fmt"

	"numaio/internal/fabric"
	"numaio/internal/numa"
	"numaio/internal/simhost"
	"numaio/internal/topology"
	"numaio/internal/units"
)

// Kernel selects the STREAM operation.
type Kernel int

// STREAM kernels.
const (
	Copy Kernel = iota
	Scale
	Add
	Triad
	// Fill is the numademo memset workload: a write-only stream. It is not
	// part of STREAM proper but shares the harness (Sec. II-B lists memset
	// among numademo's modules).
	Fill
)

func (k Kernel) String() string {
	switch k {
	case Copy:
		return "copy"
	case Scale:
		return "scale"
	case Add:
		return "add"
	case Triad:
		return "triad"
	case Fill:
		return "fill"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// arrays returns how many arrays the kernel touches.
func (k Kernel) arrays() int {
	switch k {
	case Fill:
		return 1
	case Copy, Scale:
		return 2
	default:
		return 3
	}
}

// factor is the kernel's bandwidth efficiency relative to Copy. Modern
// machines show nearly identical rates across kernels (Sec. III-B1); the
// small factors reflect the arithmetic in Scale/Add/Triad.
func (k Kernel) factor() float64 {
	switch k {
	case Copy:
		return 1.0
	case Scale:
		return 0.98
	case Add:
		return 0.96
	case Triad:
		return 0.97
	default:
		return 1.0
	}
}

// PIO efficiency of the core pipeline by CPU↔memory relationship. The
// neighbour discount reflects shared on-package resources; remote transfers
// pay coherence-protocol overhead on top of their link constraints.
const (
	effLocal    = 0.88
	effNeighbor = 0.84
	effRemote   = 0.82
)

// Config tunes a STREAM run.
type Config struct {
	Kernel Kernel
	// Threads per test; 0 means one per core of the CPU node (the paper
	// uses 4, matching the Opteron 6136 die).
	Threads int
	// ArrayBytes per array; 0 means max(4×LLC, 20 MiB). STREAM requires at
	// least 4× the largest cache; New rejects smaller values.
	ArrayBytes units.Size
	// Runs is how many repetitions the maximum is taken over; 0 means 100.
	Runs int
	// Sigma is the per-run measurement noise; 0 means 0.03, negative
	// disables jitter entirely.
	Sigma float64
}

func (c Config) withDefaults(llc units.Size) Config {
	if c.Runs == 0 {
		c.Runs = 100
	}
	if c.Sigma == 0 {
		c.Sigma = 0.03
	} else if c.Sigma < 0 {
		c.Sigma = 0
	}
	if c.ArrayBytes == 0 {
		c.ArrayBytes = 4 * llc
		if c.ArrayBytes < 20*units.MiB {
			c.ArrayBytes = 20 * units.MiB
		}
	}
	return c
}

// Runner executes STREAM measurements on a system.
type Runner struct {
	sys *numa.System
	cfg Config
}

// New validates the configuration against the machine (array-size rule) and
// returns a runner.
func New(sys *numa.System, cfg Config) (*Runner, error) {
	var maxLLC units.Size
	for _, n := range sys.Machine().Nodes {
		if n.LLC > maxLLC {
			maxLLC = n.LLC
		}
	}
	cfg = cfg.withDefaults(maxLLC)
	if cfg.ArrayBytes < 4*maxLLC {
		return nil, fmt.Errorf("stream: array size %v below 4×LLC (%v); results would be cache-resident",
			cfg.ArrayBytes, 4*maxLLC)
	}
	if cfg.Threads < 0 {
		return nil, fmt.Errorf("stream: negative thread count")
	}
	if cfg.Runs < 1 {
		return nil, fmt.Errorf("stream: runs must be >= 1")
	}
	return &Runner{sys: sys, cfg: cfg}, nil
}

// Config returns the effective (defaulted) configuration.
func (r *Runner) Config() Config { return r.cfg }

// Measure runs the kernel with threads pinned to node cpu and all arrays
// bound to node mem, returning the maximum bandwidth over the configured
// runs. Arrays are really allocated (and freed) on the simulated host, so
// numastat counters and free-memory reflect benchmark activity.
func (r *Runner) Measure(cpu, mem topology.NodeID) (units.Bandwidth, error) {
	m := r.sys.Machine()
	cpuNode, ok := m.Node(cpu)
	if !ok {
		return 0, fmt.Errorf("stream: unknown CPU node %d", int(cpu))
	}
	if _, ok := m.Node(mem); !ok {
		return 0, fmt.Errorf("stream: unknown memory node %d", int(mem))
	}

	// Allocate the kernel's arrays on the memory node (numactl --membind).
	task := r.sys.NewTask(fmt.Sprintf("stream-%v-%d-%d", r.cfg.Kernel, cpu, mem))
	if err := task.RunOn(cpu); err != nil {
		return 0, err
	}
	var bufs []*simhost.Buffer
	for i := 0; i < r.cfg.Kernel.arrays(); i++ {
		b, err := task.AllocOnNode(r.cfg.ArrayBytes, mem)
		if err != nil {
			for _, bb := range bufs {
				_ = task.Free(bb)
			}
			return 0, fmt.Errorf("stream: allocating array %d: %w", i, err)
		}
		bufs = append(bufs, b)
	}
	defer func() {
		for _, b := range bufs {
			_ = task.Free(b)
		}
	}()

	threads := r.cfg.Threads
	if threads == 0 || threads > cpuNode.Cores {
		threads = cpuNode.Cores
	}

	base, err := pioBandwidth(m, cpu, mem, threads, r.cfg.Kernel == Fill)
	if err != nil {
		return 0, err
	}

	bw := base * r.relationEff(cpu, mem) * r.cfg.Kernel.factor() * r.osFactor(cpu)
	key := fmt.Sprintf("%s/%v/cpu%d/mem%d/t%d", m.Name, r.cfg.Kernel, cpu, mem, threads)
	bw *= simhost.JitterMax(key, r.cfg.Sigma, r.cfg.Runs)
	return units.Bandwidth(bw), nil
}

// pioBandwidth computes the raw fabric-limited PIO rate for a single
// multi-threaded kernel instance.
func pioBandwidth(m *topology.Machine, cpu, mem topology.NodeID, threads int, fill bool) (float64, error) {
	s, err := fabric.NewMachineSolver(m)
	if err != nil {
		return 0, err
	}
	cpuNode := m.MustNode(cpu)
	coreCap := float64(cpuNode.CoreIssueBandwidth) *
		float64(threads) / float64(cpuNode.Cores) *
		cpuNode.EffectiveCoreMultiplier()
	if err := s.SetResource(fabric.Resource{
		ID: fabric.CoreResource(cpu), Capacity: units.Bandwidth(coreCap),
	}); err != nil {
		return 0, err
	}
	usages, err := fabric.PIOFlowUsages(m, cpu, mem, fabric.DefaultPIOParams())
	if fill {
		usages, err = fabric.FillFlowUsages(m, cpu, mem, fabric.DefaultPIOParams())
	}
	if err != nil {
		return 0, err
	}
	usages = append(usages, fabric.Usage{Resource: fabric.CoreResource(cpu), Weight: 1})
	if err := s.AddFlow(fabric.Flow{ID: "stream", Usages: usages}); err != nil {
		return 0, err
	}
	alloc, err := s.Solve()
	if err != nil {
		return 0, err
	}
	return float64(alloc.Rate("stream")), nil
}

func (r *Runner) relationEff(cpu, mem topology.NodeID) float64 {
	switch r.sys.Machine().Relation(cpu, mem) {
	case topology.Local:
		return effLocal
	case topology.Neighbor:
		return effNeighbor
	default:
		return effRemote
	}
}

// osFactor derates runs whose threads execute off node 0: a fraction of
// their references (shared libraries, OS buffers) lands on node 0, which is
// why node 0's local STREAM result stands out in Fig. 3.
func (r *Runner) osFactor(cpu topology.NodeID) float64 {
	ids := r.sys.Machine().NodeIDs()
	if cpu == ids[0] {
		return 1
	}
	return 1 - r.sys.Machine().OSMemoryFraction
}

// Matrix is the full N×N bandwidth model of Fig. 3: BW[i][j] is the rate
// with threads on Nodes[i] and data on Nodes[j].
type Matrix struct {
	Nodes []topology.NodeID
	BW    [][]units.Bandwidth
}

// Matrix measures every CPU×memory combination.
func (r *Runner) Matrix() (*Matrix, error) {
	ids := r.sys.Machine().NodeIDs()
	out := &Matrix{Nodes: ids, BW: make([][]units.Bandwidth, len(ids))}
	for i, cpu := range ids {
		out.BW[i] = make([]units.Bandwidth, len(ids))
		for j, mem := range ids {
			bw, err := r.Measure(cpu, mem)
			if err != nil {
				return nil, err
			}
			out.BW[i][j] = bw
		}
	}
	return out, nil
}

// index returns the row/column of a node.
func (m *Matrix) index(n topology.NodeID) (int, error) {
	for i, id := range m.Nodes {
		if id == n {
			return i, nil
		}
	}
	return 0, fmt.Errorf("stream: node %d not in matrix", int(n))
}

// CPUCentric returns the row of node n: threads fixed on n, data varying —
// the "CPU centric" model of Fig. 4(a).
func (m *Matrix) CPUCentric(n topology.NodeID) ([]units.Bandwidth, error) {
	i, err := m.index(n)
	if err != nil {
		return nil, err
	}
	return append([]units.Bandwidth(nil), m.BW[i]...), nil
}

// MemCentric returns the column of node n: data fixed on n, threads varying
// — the "memory centric" model of Fig. 4(b).
func (m *Matrix) MemCentric(n topology.NodeID) ([]units.Bandwidth, error) {
	j, err := m.index(n)
	if err != nil {
		return nil, err
	}
	out := make([]units.Bandwidth, len(m.Nodes))
	for i := range m.Nodes {
		out[i] = m.BW[i][j]
	}
	return out, nil
}
