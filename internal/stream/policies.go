package stream

import (
	"fmt"

	"numaio/internal/fabric"
	"numaio/internal/simhost"
	"numaio/internal/topology"
	"numaio/internal/units"
)

// This file implements the numademo-style policy comparison (Sec. II-B):
// the same STREAM kernel under local binding, remote binding, and page
// interleaving across all nodes.

// MeasureInterleaved runs the kernel with threads pinned to node cpu and
// the arrays interleaved over all nodes (numactl --interleave=all). The
// PIO traffic fans out proportionally to the page placement.
func (r *Runner) MeasureInterleaved(cpu topology.NodeID) (units.Bandwidth, error) {
	m := r.sys.Machine()
	cpuNode, ok := m.Node(cpu)
	if !ok {
		return 0, fmt.Errorf("stream: unknown CPU node %d", int(cpu))
	}

	task := r.sys.NewTask(fmt.Sprintf("stream-il-%v-%d", r.cfg.Kernel, cpu))
	if err := task.RunOn(cpu); err != nil {
		return 0, err
	}
	var bufs []*simhost.Buffer
	for i := 0; i < r.cfg.Kernel.arrays(); i++ {
		b, err := task.AllocInterleaved(r.cfg.ArrayBytes)
		if err != nil {
			for _, bb := range bufs {
				_ = task.Free(bb)
			}
			return 0, fmt.Errorf("stream: allocating interleaved array %d: %w", i, err)
		}
		bufs = append(bufs, b)
	}
	defer func() {
		for _, b := range bufs {
			_ = task.Free(b)
		}
	}()

	threads := r.cfg.Threads
	if threads == 0 || threads > cpuNode.Cores {
		threads = cpuNode.Cores
	}

	// Combine the per-node PIO footprints weighted by the page shares of
	// the first array (all arrays share the same distribution shape).
	pages := bufs[0].Pages
	var total float64
	for _, sz := range pages {
		total += float64(sz)
	}
	s, err := fabric.NewMachineSolver(m)
	if err != nil {
		return 0, err
	}
	coreCap := float64(cpuNode.CoreIssueBandwidth) *
		float64(threads) / float64(cpuNode.Cores) *
		cpuNode.EffectiveCoreMultiplier()
	if err := s.SetResource(fabric.Resource{
		ID: fabric.CoreResource(cpu), Capacity: units.Bandwidth(coreCap),
	}); err != nil {
		return 0, err
	}
	var usages []fabric.Usage
	var effSum, fracSum float64
	for _, mem := range m.NodeIDs() {
		sz, ok := pages[mem]
		if !ok || sz <= 0 {
			continue
		}
		frac := float64(sz) / total
		nodeUsages, err := fabric.PIOFlowUsages(m, cpu, mem, fabric.DefaultPIOParams())
		if err != nil {
			return 0, err
		}
		for _, u := range nodeUsages {
			usages = append(usages, fabric.Usage{Resource: u.Resource, Weight: u.Weight * frac})
		}
		effSum += frac * r.relationEff(cpu, mem)
		fracSum += frac
	}
	if fracSum == 0 {
		return 0, fmt.Errorf("stream: interleaved buffer has no pages")
	}
	usages = append(usages, fabric.Usage{Resource: fabric.CoreResource(cpu), Weight: 1})
	if err := s.AddFlow(fabric.Flow{ID: "stream-il", Usages: usages}); err != nil {
		return 0, err
	}
	alloc, err := s.Solve()
	if err != nil {
		return 0, err
	}

	bw := float64(alloc.Rate("stream-il")) * (effSum / fracSum) *
		r.cfg.Kernel.factor() * r.osFactor(cpu)
	key := fmt.Sprintf("%s/%v/il/cpu%d/t%d", m.Name, r.cfg.Kernel, cpu, threads)
	bw *= simhost.JitterMax(key, r.cfg.Sigma, r.cfg.Runs)
	return units.Bandwidth(bw), nil
}

// PolicyComparison is the outcome of ComparePolicies.
type PolicyComparison struct {
	CPU         topology.NodeID
	Local       units.Bandwidth // arrays bound to the CPU's node
	WorstRemote units.Bandwidth // arrays bound to the slowest remote node
	BestRemote  units.Bandwidth // arrays bound to the fastest remote node
	Interleaved units.Bandwidth // arrays interleaved over all nodes
}

// ComparePolicies measures the kernel under the numademo affinity policies
// for one CPU node.
func (r *Runner) ComparePolicies(cpu topology.NodeID) (*PolicyComparison, error) {
	out := &PolicyComparison{CPU: cpu}
	local, err := r.Measure(cpu, cpu)
	if err != nil {
		return nil, err
	}
	out.Local = local
	for _, mem := range r.sys.Machine().NodeIDs() {
		if mem == cpu {
			continue
		}
		bw, err := r.Measure(cpu, mem)
		if err != nil {
			return nil, err
		}
		if out.WorstRemote == 0 || bw < out.WorstRemote {
			out.WorstRemote = bw
		}
		if bw > out.BestRemote {
			out.BestRemote = bw
		}
	}
	il, err := r.MeasureInterleaved(cpu)
	if err != nil {
		return nil, err
	}
	out.Interleaved = il
	return out, nil
}
