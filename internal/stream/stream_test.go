package stream

import (
	"math"
	"testing"

	"numaio/internal/numa"
	"numaio/internal/topology"
	"numaio/internal/units"
)

func newRunner(t *testing.T, cfg Config) (*numa.System, *Runner) {
	t.Helper()
	sys, err := numa.NewSystem(topology.DL585G7())
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys, r
}

func TestConfigDefaults(t *testing.T) {
	_, r := newRunner(t, Config{})
	cfg := r.Config()
	if cfg.Runs != 100 {
		t.Errorf("Runs = %d, want 100", cfg.Runs)
	}
	if cfg.Sigma != 0.03 {
		t.Errorf("Sigma = %v, want 0.03", cfg.Sigma)
	}
	// 4×LLC = 20 MiB on the Opteron 6136, matching the paper's array size.
	if cfg.ArrayBytes != 20*units.MiB {
		t.Errorf("ArrayBytes = %v, want 20MiB", cfg.ArrayBytes)
	}
}

func TestArraySizeRule(t *testing.T) {
	sys, err := numa.NewSystem(topology.DL585G7())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(sys, Config{ArrayBytes: units.MiB}); err == nil {
		t.Error("array below 4×LLC must be rejected")
	}
	if _, err := New(sys, Config{Threads: -1}); err == nil {
		t.Error("negative threads must be rejected")
	}
	if _, err := New(sys, Config{Runs: -5}); err == nil {
		t.Error("negative runs must be rejected")
	}
}

func TestMeasureUnknownNodes(t *testing.T) {
	_, r := newRunner(t, Config{Sigma: -1})
	if _, err := r.Measure(42, 0); err == nil {
		t.Error("unknown CPU node should fail")
	}
	if _, err := r.Measure(0, 42); err == nil {
		t.Error("unknown memory node should fail")
	}
}

// Measurements must not leak simulated memory.
func TestMeasureRestoresMemory(t *testing.T) {
	sys, r := newRunner(t, Config{Sigma: -1})
	before := sys.FreeMem(4)
	if _, err := r.Measure(7, 4); err != nil {
		t.Fatal(err)
	}
	if after := sys.FreeMem(4); after != before {
		t.Errorf("node 4 free changed: %v -> %v", before, after)
	}
	// numastat must show the bind allocations.
	if st := sys.Stats(4); st.NumaHit < 2 {
		t.Errorf("stats(4).NumaHit = %d, want >= 2 (two arrays)", st.NumaHit)
	}
}

// Fig. 3 shape, row by row: local is best, the package neighbour second.
func TestLocalBestNeighborSecond(t *testing.T) {
	_, r := newRunner(t, Config{Sigma: -1})
	for cpu := topology.NodeID(0); cpu < 8; cpu++ {
		local, err := r.Measure(cpu, cpu)
		if err != nil {
			t.Fatal(err)
		}
		neighbor := cpu ^ 1 // package mate
		nb, err := r.Measure(cpu, neighbor)
		if err != nil {
			t.Fatal(err)
		}
		if !(local > nb) {
			t.Errorf("CPU%d: local %v <= neighbor %v", cpu, local.Gbps(), nb.Gbps())
		}
		for mem := topology.NodeID(0); mem < 8; mem++ {
			if mem == cpu || mem == neighbor {
				continue
			}
			bw, err := r.Measure(cpu, mem)
			if err != nil {
				t.Fatal(err)
			}
			if !(nb > bw) {
				t.Errorf("CPU%d: neighbor %v <= remote mem%d %v",
					cpu, nb.Gbps(), mem, bw.Gbps())
			}
		}
	}
}

// Sec. IV-A: node 0's local run beats every other node's local run (OS
// buffers and shared libraries live on node 0).
func TestNode0LocalAdvantage(t *testing.T) {
	_, r := newRunner(t, Config{Sigma: -1})
	l0, err := r.Measure(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for cpu := topology.NodeID(1); cpu < 8; cpu++ {
		ln, err := r.Measure(cpu, cpu)
		if err != nil {
			t.Fatal(err)
		}
		if !(l0 > ln) {
			t.Errorf("local(0)=%v should beat local(%d)=%v", l0.Gbps(), cpu, ln.Gbps())
		}
	}
}

// Sec. IV-A asymmetry: STREAM on node 7 reading node 4 beats reading nodes
// 2,3, yet STREAM on node 4 against node 7 loses to nodes 2,3 against
// node 7 — the measurement that rules out hop-distance models.
func TestFig3Asymmetry(t *testing.T) {
	_, r := newRunner(t, Config{Sigma: -1})
	get := func(cpu, mem topology.NodeID) float64 {
		bw, err := r.Measure(cpu, mem)
		if err != nil {
			t.Fatal(err)
		}
		return bw.Gbps()
	}
	m74, m72, m73 := get(7, 4), get(7, 2), get(7, 3)
	if !(m74 > m72 && m74 > m73) {
		t.Errorf("CPU7: mem4 %.2f should beat mem2 %.2f and mem3 %.2f", m74, m72, m73)
	}
	m47, m27, m37 := get(4, 7), get(2, 7), get(3, 7)
	if !(m47 < m27 && m47 < m37) {
		t.Errorf("MEM7: cpu4 %.2f should lose to cpu2 %.2f and cpu3 %.2f", m47, m27, m37)
	}
	// The paper reports 21.34 vs 18.45 Gb/s — a ratio of ~1.16.
	if ratio := m74 / m47; ratio < 1.05 || ratio > 1.35 {
		t.Errorf("asymmetry ratio %.3f outside [1.05, 1.35] (paper: 1.157)", ratio)
	}
}

func TestKernelsSimilar(t *testing.T) {
	var rates [4]float64
	for k := Copy; k <= Triad; k++ {
		_, r := newRunner(t, Config{Kernel: k, Sigma: -1})
		bw, err := r.Measure(5, 5)
		if err != nil {
			t.Fatal(err)
		}
		rates[k] = bw.Gbps()
	}
	for k := Scale; k <= Triad; k++ {
		if rel := math.Abs(rates[k]-rates[Copy]) / rates[Copy]; rel > 0.05 {
			t.Errorf("%v deviates %.0f%% from copy", k, rel*100)
		}
	}
	if !(rates[Copy] > rates[Add]) {
		t.Error("copy should be the fastest kernel")
	}
}

func TestThreadScaling(t *testing.T) {
	_, r1 := newRunner(t, Config{Threads: 1, Sigma: -1})
	_, r4 := newRunner(t, Config{Threads: 4, Sigma: -1})
	one, err := r1.Measure(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	four, err := r4.Measure(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !(four > 3*one) {
		t.Errorf("4 threads (%v) should be ~4x 1 thread (%v)", four.Gbps(), one.Gbps())
	}
	// More threads than cores saturates rather than scaling further.
	_, r8 := newRunner(t, Config{Threads: 8, Sigma: -1})
	eight, err := r8.Measure(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(eight-four)) > 1e-6*float64(four) {
		t.Errorf("8 threads (%v) should equal 4 threads (%v)", eight.Gbps(), four.Gbps())
	}
}

// The maximum-of-runs methodology: more runs can only raise the reported
// number, and jittered results stay within sigma of the noiseless value.
func TestJitterMaxMethodology(t *testing.T) {
	_, quiet := newRunner(t, Config{Sigma: -1})
	_, noisy := newRunner(t, Config{Runs: 100})
	q, err := quiet.Measure(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	n, err := noisy.Measure(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := float64(q)*0.97, float64(q)*1.031
	if float64(n) < lo || float64(n) > hi {
		t.Errorf("noisy max %v outside [%v, %v]", n.Gbps(), lo/1e9, hi/1e9)
	}
}

func TestMatrixAndModels(t *testing.T) {
	_, r := newRunner(t, Config{Sigma: -1})
	mx, err := r.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if len(mx.BW) != 8 || len(mx.BW[0]) != 8 {
		t.Fatalf("matrix shape %dx%d", len(mx.BW), len(mx.BW[0]))
	}
	row, err := mx.CPUCentric(7)
	if err != nil {
		t.Fatal(err)
	}
	col, err := mx.MemCentric(7)
	if err != nil {
		t.Fatal(err)
	}
	for j := range row {
		if row[j] != mx.BW[7][j] {
			t.Errorf("CPUCentric[%d] mismatch", j)
		}
		if col[j] != mx.BW[j][7] {
			t.Errorf("MemCentric[%d] mismatch", j)
		}
	}
	if _, err := mx.CPUCentric(42); err == nil {
		t.Error("unknown node should error")
	}
	if _, err := mx.MemCentric(42); err == nil {
		t.Error("unknown node should error")
	}
}

func TestKernelStrings(t *testing.T) {
	for k, want := range map[Kernel]string{
		Copy: "copy", Scale: "scale", Add: "add", Triad: "triad",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
	if Kernel(9).String() == "" {
		t.Error("fallback string empty")
	}
	if Kernel(9).factor() != 1 {
		t.Error("fallback factor should be 1")
	}
	if Copy.arrays() != 2 || Triad.arrays() != 3 {
		t.Error("array counts wrong")
	}
}

func TestMeasureInterleaved(t *testing.T) {
	sys, r := newRunner(t, Config{Sigma: -1})
	il, err := r.MeasureInterleaved(7)
	if err != nil {
		t.Fatal(err)
	}
	local, err := r.Measure(7, 7)
	if err != nil {
		t.Fatal(err)
	}
	worst, err := r.Measure(7, 2) // the starved 2->7 response path
	if err != nil {
		t.Fatal(err)
	}
	if !(il < local) {
		t.Errorf("interleaved %.2f should trail local %.2f", il.Gbps(), local.Gbps())
	}
	if !(il > worst) {
		t.Errorf("interleaved %.2f should beat the worst binding %.2f", il.Gbps(), worst.Gbps())
	}
	// Memory must be restored.
	for n := topology.NodeID(0); n < 8; n++ {
		want := 4 * units.GiB
		if n == 0 {
			want -= units.Size(2.5 * float64(units.GiB))
		}
		if got := sys.FreeMem(n); got != want {
			t.Errorf("node %d free = %v after interleaved run", n, got)
		}
	}
	if _, err := r.MeasureInterleaved(42); err == nil {
		t.Error("unknown CPU node should fail")
	}
}

func TestComparePolicies(t *testing.T) {
	_, r := newRunner(t, Config{Sigma: -1})
	cmp, err := r.ComparePolicies(7)
	if err != nil {
		t.Fatal(err)
	}
	if !(cmp.Local > cmp.BestRemote) {
		t.Errorf("local %.2f should beat best remote %.2f", cmp.Local.Gbps(), cmp.BestRemote.Gbps())
	}
	if !(cmp.BestRemote > cmp.WorstRemote) {
		t.Errorf("best remote %.2f should beat worst remote %.2f",
			cmp.BestRemote.Gbps(), cmp.WorstRemote.Gbps())
	}
	if !(cmp.Interleaved > cmp.WorstRemote && cmp.Interleaved < cmp.Local) {
		t.Errorf("interleaved %.2f should lie between worst %.2f and local %.2f",
			cmp.Interleaved.Gbps(), cmp.WorstRemote.Gbps(), cmp.Local.Gbps())
	}
}

// memset (Fill) is write-only: it beats Copy everywhere and survives the
// starved response directions that throttle Copy.
func TestFillKernel(t *testing.T) {
	_, fill := newRunner(t, Config{Kernel: Fill, Sigma: -1})
	_, cp := newRunner(t, Config{Kernel: Copy, Sigma: -1})
	for _, memNode := range []topology.NodeID{7, 2, 4} {
		f, err := fill.Measure(7, memNode)
		if err != nil {
			t.Fatal(err)
		}
		c, err := cp.Measure(7, memNode)
		if err != nil {
			t.Fatal(err)
		}
		if !(f >= c) {
			t.Errorf("mem%d: fill %.2f should not lose to copy %.2f",
				memNode, f.Gbps(), c.Gbps())
		}
	}
	// Fill from 4 toward 7 does not pay the 7->4 response penalty that
	// hurts Copy: it must be clearly faster.
	f47, err := fill.Measure(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	c47, err := cp.Measure(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !(f47 > c47*1.2) {
		t.Errorf("fill 4->7 (%.2f) should clearly beat copy (%.2f)", f47.Gbps(), c47.Gbps())
	}
	if Fill.String() != "fill" || Fill.arrays() != 1 {
		t.Error("fill kernel metadata")
	}
}
