package cluster

import (
	"testing"

	"numaio/internal/device"
	"numaio/internal/topology"
	"numaio/internal/units"
)

func newCluster(t *testing.T, names ...string) *Cluster {
	t.Helper()
	c, err := New(topology.DL585G7, 7, names...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(topology.DL585G7, 7); err == nil {
		t.Error("no hosts should fail")
	}
	if _, err := New(func() *topology.Machine { return topology.New("bad", nil) }, 7, "a"); err == nil {
		t.Error("invalid machine should fail")
	}
	if _, err := New(topology.DL585G7, 42, "a"); err == nil {
		t.Error("unknown target should fail")
	}
}

func TestHostByName(t *testing.T) {
	c := newCluster(t, "alpha", "beta")
	if h, ok := c.HostByName("beta"); !ok || h.Name != "beta" {
		t.Error("HostByName failed")
	}
	if _, ok := c.HostByName("gamma"); ok {
		t.Error("unknown host should not resolve")
	}
}

func TestPlacePolicies(t *testing.T) {
	c := newCluster(t, "a", "b")

	pack, err := c.Place(device.EngineRDMAWrite, 4, PackFirst)
	if err != nil {
		t.Fatal(err)
	}
	for _, as := range pack {
		if as.Host != "a" {
			t.Errorf("pack-first should stay on host a: %+v", pack)
		}
	}

	spread, err := c.Place(device.EngineRDMAWrite, 4, SpreadEven)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, as := range spread {
		counts[as.Host]++
	}
	if counts["a"] != 2 || counts["b"] != 2 {
		t.Errorf("spread-even counts = %v", counts)
	}

	if _, err := c.Place(device.EngineRDMAWrite, 0, SpreadEven); err == nil {
		t.Error("zero count should fail")
	}
	if _, err := c.Place(device.EngineRDMAWrite, 2, Policy(9)); err == nil {
		t.Error("unknown policy should fail")
	}
	if _, err := c.Place("warp", 2, SpreadEven); err == nil {
		t.Error("unknown engine should fail")
	}
}

// Two hosts mean two NICs: spreading RDMA writers doubles the measured
// aggregate over packing them onto one host's adapter.
func TestSpreadDoublesOverPack(t *testing.T) {
	c := newCluster(t, "a", "b")
	const tasks = 4
	size := 2 * units.GiB

	pack, err := c.Place(device.EngineRDMAWrite, tasks, PackFirst)
	if err != nil {
		t.Fatal(err)
	}
	packEval, err := c.Evaluate(device.EngineRDMAWrite, pack, size)
	if err != nil {
		t.Fatal(err)
	}
	spread, err := c.Place(device.EngineRDMAWrite, tasks, SpreadEven)
	if err != nil {
		t.Fatal(err)
	}
	spreadEval, err := c.Evaluate(device.EngineRDMAWrite, spread, size)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(spreadEval.Aggregate) / float64(packEval.Aggregate)
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("spread/pack = %.2f, want ~2 (two adapters)", ratio)
	}
}

// The greedy model-driven policy must match spread-even on identical hosts
// (both saturate each NIC evenly) and never lose to pack-first.
func TestModelGreedy(t *testing.T) {
	c := newCluster(t, "a", "b")
	const tasks = 6
	size := 2 * units.GiB

	greedy, err := c.Place(device.EngineRDMAWrite, tasks, ModelGreedy)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, as := range greedy {
		counts[as.Host]++
	}
	if counts["a"] != 3 || counts["b"] != 3 {
		t.Errorf("greedy counts on identical hosts = %v, want 3/3", counts)
	}
	greedyEval, err := c.Evaluate(device.EngineRDMAWrite, greedy, size)
	if err != nil {
		t.Fatal(err)
	}
	pack, err := c.Place(device.EngineRDMAWrite, tasks, PackFirst)
	if err != nil {
		t.Fatal(err)
	}
	packEval, err := c.Evaluate(device.EngineRDMAWrite, pack, size)
	if err != nil {
		t.Fatal(err)
	}
	if !(greedyEval.Aggregate >= packEval.Aggregate) {
		t.Errorf("greedy %.2f should not lose to pack %.2f",
			greedyEval.Aggregate.Gbps(), packEval.Aggregate.Gbps())
	}
}

func TestEvaluateValidation(t *testing.T) {
	c := newCluster(t, "a")
	if _, err := c.Evaluate(device.EngineRDMAWrite, nil, units.GiB); err == nil {
		t.Error("empty assignment should fail")
	}
	bad := []Assignment{{Host: "ghost", Node: 7}}
	if _, err := c.Evaluate(device.EngineRDMAWrite, bad, units.GiB); err == nil {
		t.Error("unknown host should fail")
	}
}

func TestPolicyStrings(t *testing.T) {
	if PackFirst.String() != "pack-first" || SpreadEven.String() != "spread-even" ||
		ModelGreedy.String() != "model-greedy" {
		t.Error("policy strings")
	}
	if Policy(9).String() == "" {
		t.Error("fallback string")
	}
}
