// Package cluster schedules I/O tasks across several NUMA hosts — the
// multi-user/multi-task cluster environment that motivates the paper
// (Sec. I-A). Each host carries its own characterized models; the cluster
// scheduler first decides how many tasks each host takes (using the
// analytic per-host estimator) and then delegates the node binding to the
// per-host class-balanced policy.
package cluster

import (
	"fmt"
	"sort"

	"numaio/internal/core"
	"numaio/internal/numa"
	"numaio/internal/sched"
	"numaio/internal/topology"
	"numaio/internal/units"
)

// Host is one machine of the cluster with its characterized scheduler.
type Host struct {
	Name      string
	Sys       *numa.System
	Scheduler *sched.Scheduler
}

// Cluster is a set of characterized hosts.
type Cluster struct {
	Hosts []*Host
}

// New boots count identical hosts (each built independently) and
// characterizes each one with Algorithm 1 in both directions.
func New(build func() *topology.Machine, target topology.NodeID, names ...string) (*Cluster, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("cluster: no hosts")
	}
	c := &Cluster{}
	for _, name := range names {
		sys, err := numa.NewSystem(build())
		if err != nil {
			return nil, fmt.Errorf("cluster: host %q: %w", name, err)
		}
		ch, err := core.NewCharacterizer(sys, core.Config{})
		if err != nil {
			return nil, err
		}
		write, err := ch.Characterize(target, core.ModeWrite)
		if err != nil {
			return nil, fmt.Errorf("cluster: host %q: %w", name, err)
		}
		read, err := ch.Characterize(target, core.ModeRead)
		if err != nil {
			return nil, fmt.Errorf("cluster: host %q: %w", name, err)
		}
		s, err := sched.New(sys, write, read)
		if err != nil {
			return nil, err
		}
		c.Hosts = append(c.Hosts, &Host{Name: name, Sys: sys, Scheduler: s})
	}
	return c, nil
}

// HostSpec describes one pre-characterized host for FromModels.
type HostSpec struct {
	Name   string
	Sys    *numa.System
	Models *core.MachineModel
	Target topology.NodeID
}

// FromModels builds a cluster from hosts whose characterizations already
// exist — the request-scoped entry point for services that cache
// MachineModels: no Algorithm 1 runs here, only model lookup and scheduler
// construction.
func FromModels(specs []HostSpec) (*Cluster, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("cluster: no hosts")
	}
	c := &Cluster{}
	for _, spec := range specs {
		s, err := sched.FromMachineModel(spec.Sys, spec.Models, spec.Target)
		if err != nil {
			return nil, fmt.Errorf("cluster: host %q: %w", spec.Name, err)
		}
		c.Hosts = append(c.Hosts, &Host{Name: spec.Name, Sys: spec.Sys, Scheduler: s})
	}
	return c, nil
}

// ParsePolicy maps the wire/CLI spelling of a cluster policy to its value.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range []Policy{PackFirst, SpreadEven, ModelGreedy} {
		if s == p.String() {
			return p, nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown policy %q (want pack-first, spread-even, or model-greedy)", s)
}

// HostByName returns the named host.
func (c *Cluster) HostByName(name string) (*Host, bool) {
	for _, h := range c.Hosts {
		if h.Name == name {
			return h, true
		}
	}
	return nil, false
}

// Assignment binds one task to a node of a host.
type Assignment struct {
	Host string
	Node topology.NodeID
}

// Policy selects the cluster-level distribution strategy.
type Policy int

// Policies.
const (
	// PackFirst fills the first host completely before using the next —
	// the consolidation strategy.
	PackFirst Policy = iota
	// SpreadEven distributes tasks round-robin over hosts.
	SpreadEven
	// ModelGreedy assigns each task to the host whose estimated aggregate
	// gains the most, using the per-host analytic estimator.
	ModelGreedy
)

func (p Policy) String() string {
	switch p {
	case PackFirst:
		return "pack-first"
	case SpreadEven:
		return "spread-even"
	case ModelGreedy:
		return "model-greedy"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Place distributes count tasks of the engine across the cluster.
func (c *Cluster) Place(engine string, count int, policy Policy) ([]Assignment, error) {
	if count <= 0 {
		return nil, fmt.Errorf("cluster: count must be positive")
	}
	perHost := make([]int, len(c.Hosts))
	switch policy {
	case PackFirst:
		// A host "fills" at one task per core of its eligible nodes.
		left := count
		for i, h := range c.Hosts {
			if left == 0 {
				break
			}
			cap, err := hostSlotCap(h, engine)
			if err != nil {
				return nil, err
			}
			take := left
			if i < len(c.Hosts)-1 && take > cap {
				take = cap
			}
			perHost[i] = take
			left -= take
		}
	case SpreadEven:
		for i := 0; i < count; i++ {
			perHost[i%len(c.Hosts)]++
		}
	case ModelGreedy:
		// Greedy marginal-gain assignment via the analytic estimator.
		estimates := make([]units.Bandwidth, len(c.Hosts))
		for i := 0; i < count; i++ {
			bestHost, bestGain := -1, units.Bandwidth(-1)
			for hi, h := range c.Hosts {
				est, err := hostEstimate(h, engine, perHost[hi]+1)
				if err != nil {
					return nil, err
				}
				gain := est - estimates[hi]
				// Strictly better gain wins; equal gains go to the least
				// loaded host so saturated adapters still balance.
				better := gain > bestGain+1e-6 ||
					(gain > bestGain-1e-6 && bestHost >= 0 && perHost[hi] < perHost[bestHost])
				if bestHost < 0 || better {
					bestGain, bestHost = gain, hi
				}
			}
			perHost[bestHost]++
			est, err := hostEstimate(c.Hosts[bestHost], engine, perHost[bestHost])
			if err != nil {
				return nil, err
			}
			estimates[bestHost] = est
		}
	default:
		return nil, fmt.Errorf("cluster: unknown policy %v", policy)
	}

	var out []Assignment
	for hi, n := range perHost {
		if n == 0 {
			continue
		}
		placement, err := c.Hosts[hi].Scheduler.Place(engine, n, sched.ClassBalanced)
		if err != nil {
			return nil, err
		}
		for _, node := range placement {
			out = append(out, Assignment{Host: c.Hosts[hi].Name, Node: node})
		}
	}
	return out, nil
}

// hostSlotCap is the pack-first fill level: one task per core over the
// host's eligible nodes.
func hostSlotCap(h *Host, engine string) (int, error) {
	nodes, err := h.Scheduler.EligibleNodes(engine)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, n := range nodes {
		total += h.Sys.Machine().MustNode(n).Cores
	}
	return total, nil
}

// hostEstimate predicts a host's aggregate for n class-balanced tasks.
func hostEstimate(h *Host, engine string, n int) (units.Bandwidth, error) {
	placement, err := h.Scheduler.Place(engine, n, sched.ClassBalanced)
	if err != nil {
		return 0, err
	}
	return h.Scheduler.Estimate(engine, placement)
}

// Evaluation is the measured outcome of a cluster placement.
type Evaluation struct {
	PerHost   map[string]units.Bandwidth
	Aggregate units.Bandwidth
}

// Evaluate runs the engine on every host with its share of the assignments
// and sums the measured aggregates.
func (c *Cluster) Evaluate(engine string, assignments []Assignment, sizePerTask units.Size) (*Evaluation, error) {
	if len(assignments) == 0 {
		return nil, fmt.Errorf("cluster: empty assignment")
	}
	byHost := make(map[string][]topology.NodeID)
	for _, a := range assignments {
		byHost[a.Host] = append(byHost[a.Host], a.Node)
	}
	names := make([]string, 0, len(byHost))
	for name := range byHost {
		names = append(names, name)
	}
	sort.Strings(names)

	out := &Evaluation{PerHost: make(map[string]units.Bandwidth)}
	for _, name := range names {
		h, ok := c.HostByName(name)
		if !ok {
			return nil, fmt.Errorf("cluster: unknown host %q", name)
		}
		rep, err := h.Scheduler.Evaluate(engine, byHost[name], sizePerTask)
		if err != nil {
			return nil, err
		}
		out.PerHost[name] = rep.Aggregate
		out.Aggregate += rep.Aggregate
	}
	return out, nil
}
