// Package numaio's repository-root benchmarks regenerate every table and
// figure of the paper (one testing.B target per artifact; see the
// per-experiment index in DESIGN.md §4). Each benchmark reports the
// headline bandwidths as custom metrics so `go test -bench` output can be
// compared against the paper directly.
package numaio

import (
	"fmt"
	"testing"

	"numaio/internal/device"
	"numaio/internal/experiments"
	"numaio/internal/fabric"
	"numaio/internal/fio"
	"numaio/internal/numa"
	"numaio/internal/sched"
	"numaio/internal/topology"
	"numaio/internal/units"
)

func newLab(b *testing.B) *experiments.Lab {
	b.Helper()
	l, err := experiments.NewLab()
	if err != nil {
		b.Fatal(err)
	}
	return l
}

// BenchmarkTable1NUMAFactor regenerates Table I.
func BenchmarkTable1NUMAFactor(b *testing.B) {
	var last *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, row := range last.Rows {
		b.ReportMetric(row.Measured, "factor:"+row.Server)
	}
}

// BenchmarkFigure3StreamMatrix regenerates the 8×8 STREAM matrix of Fig. 3.
func BenchmarkFigure3StreamMatrix(b *testing.B) {
	l := newLab(b)
	var last *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		r, err := l.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Matrix.BW[7][4].Gbps(), "Gbps:cpu7/mem4")
	b.ReportMetric(last.Matrix.BW[4][7].Gbps(), "Gbps:cpu4/mem7")
}

// BenchmarkFigure4NodeModels regenerates the CPU/memory-centric models.
func BenchmarkFigure4NodeModels(b *testing.B) {
	l := newLab(b)
	var last *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		r, err := l.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.CPUCentric[7].Gbps(), "Gbps:local")
}

// BenchmarkFigure5TCP regenerates the TCP stream-scaling figure.
func BenchmarkFigure5TCP(b *testing.B) {
	l := newLab(b)
	var last *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		r, err := l.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	s6, _ := last.Send.BWFor(6, 4)
	r4, _ := last.Recv.BWFor(4, 4)
	b.ReportMetric(s6.Gbps(), "Gbps:send-node6")
	b.ReportMetric(r4.Gbps(), "Gbps:recv-node4")
}

// BenchmarkFigure6RDMA regenerates the RDMA figure.
func BenchmarkFigure6RDMA(b *testing.B) {
	l := newLab(b)
	var last *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		r, err := l.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	w2, _ := last.Write.BWFor(2, 2)
	r4, _ := last.Read.BWFor(4, 2)
	b.ReportMetric(w2.Gbps(), "Gbps:write-node2")
	b.ReportMetric(r4.Gbps(), "Gbps:read-node4")
}

// BenchmarkFigure7Disk regenerates the SSD figure.
func BenchmarkFigure7Disk(b *testing.B) {
	l := newLab(b)
	var last *experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		r, err := l.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	w7, _ := last.Write.BWFor(7, 2)
	r7, _ := last.Read.BWFor(7, 2)
	b.ReportMetric(w7.Gbps(), "Gbps:write-node7")
	b.ReportMetric(r7.Gbps(), "Gbps:read-node7")
}

// BenchmarkFigure10IOModel regenerates the proposed model (Algorithm 1).
func BenchmarkFigure10IOModel(b *testing.B) {
	l := newLab(b)
	var last *experiments.Fig10Result
	for i := 0; i < b.N; i++ {
		r, err := l.Figure10()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.Write.NumClasses()), "classes:write")
	b.ReportMetric(float64(last.Read.NumClasses()), "classes:read")
}

// BenchmarkTable4WriteModel regenerates Table IV.
func BenchmarkTable4WriteModel(b *testing.B) {
	l := newLab(b)
	var last *experiments.Table45Result
	for i := 0; i < b.N; i++ {
		r, err := l.Table4()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, row := range last.Rows {
		b.ReportMetric(row.Stats["RDMA_WRITE"].Avg.Gbps(), fmt.Sprintf("Gbps:rdmaw-c%d", row.Rank))
	}
}

// BenchmarkTable5ReadModel regenerates Table V.
func BenchmarkTable5ReadModel(b *testing.B) {
	l := newLab(b)
	var last *experiments.Table45Result
	for i := 0; i < b.N; i++ {
		r, err := l.Table5()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, row := range last.Rows {
		b.ReportMetric(row.Stats["RDMA_READ"].Avg.Gbps(), fmt.Sprintf("Gbps:rdmar-c%d", row.Rank))
	}
}

// BenchmarkEq1Prediction regenerates the Eq. 1 validation.
func BenchmarkEq1Prediction(b *testing.B) {
	l := newLab(b)
	var last *experiments.Eq1Result
	for i := 0; i < b.N; i++ {
		r, err := l.Eq1()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Predicted.Gbps(), "Gbps:predicted")
	b.ReportMetric(last.Measured.Gbps(), "Gbps:measured")
	b.ReportMetric(last.RelErr*100, "relerr-pct")
}

// BenchmarkSchedulerPlacement regenerates the Sec. V-B scheduler example.
func BenchmarkSchedulerPlacement(b *testing.B) {
	l := newLab(b)
	var last *experiments.SchedResult
	for i := 0; i < b.N; i++ {
		r, err := l.Scheduler()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Memcpy.Aggregate[sched.LocalOnly].Gbps(), "Gbps:local-only")
	b.ReportMetric(last.Memcpy.Aggregate[sched.ClassBalanced].Gbps(), "Gbps:class-balanced")
}

// BenchmarkAblationPIOvsDMA regenerates ablation A1.
func BenchmarkAblationPIOvsDMA(b *testing.B) {
	l := newLab(b)
	for i := 0; i < b.N; i++ {
		if _, err := l.AblationPIOvsDMA(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationInterrupts regenerates ablation A2.
func BenchmarkAblationInterrupts(b *testing.B) {
	l := newLab(b)
	var last *experiments.IRQResult
	for i := 0; i < b.N; i++ {
		r, err := l.AblationIRQ()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.WithIRQ[7].Gbps(), "Gbps:node7-irq")
	b.ReportMetric(last.WithoutIRQ[7].Gbps(), "Gbps:node7-noirq")
}

// BenchmarkAblationBaselines regenerates ablation A3.
func BenchmarkAblationBaselines(b *testing.B) {
	l := newLab(b)
	var last *experiments.BaselinesResult
	for i := 0; i < b.N; i++ {
		r, err := l.AblationBaselines()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	short := map[string]string{
		"proposed iomodel (memcpy)": "iomodel",
		"hop distance":              "hop",
		"STREAM CPU-centric":        "stream-cpu",
		"STREAM memory-centric":     "stream-mem",
	}
	for _, row := range last.Rows {
		b.ReportMetric(row.Spearman, "rho:"+short[row.Model])
	}
}

// BenchmarkFabricSolver measures the allocator core: 32 flows over the
// DL585G7 fabric.
func BenchmarkFabricSolver(b *testing.B) {
	m := topology.DL585G7()
	resources := fabric.MachineResources(m)
	var flows []fabric.Flow
	for n := topology.NodeID(0); n < 8; n++ {
		for k := 0; k < 4; k++ {
			usages, err := fabric.CopyFlowUsages(m, n, 7)
			if err != nil {
				b.Fatal(err)
			}
			flows = append(flows, fabric.Flow{ID: fmt.Sprintf("f%d-%d", n, k), Usages: usages})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := fabric.NewSolver()
		for _, r := range resources {
			if err := s.SetResource(r); err != nil {
				b.Fatal(err)
			}
		}
		for _, f := range flows {
			if err := s.AddFlow(f); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := s.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFioRun measures one end-to-end fio job execution.
func BenchmarkFioRun(b *testing.B) {
	sys, err := numa.NewSystem(topology.DL585G7())
	if err != nil {
		b.Fatal(err)
	}
	runner := fio.NewRunner(sys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.Run([]fio.Job{{
			Name: "bench", Engine: device.EngineRDMAWrite, Node: 2,
			NumJobs: 4, Size: 4 * units.GiB,
		}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTopologyInference regenerates ablation A4.
func BenchmarkAblationTopologyInference(b *testing.B) {
	l := newLab(b)
	var last *experiments.InferResult
	for i := 0; i < b.N; i++ {
		r, err := l.AblationTopologyInference()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Matches[0].Score, "jaccard:best")
	b.ReportMetric(last.IdealScore, "jaccard:ideal")
}

// BenchmarkAblationLinkDegradation regenerates ablation A5.
func BenchmarkAblationLinkDegradation(b *testing.B) {
	l := newLab(b)
	var last *experiments.DegradeResult
	for i := 0; i < b.N; i++ {
		r, err := l.AblationLinkDegradation()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.Node0ClassAfter), "class:node0-after")
}

// BenchmarkNetPairMatrix regenerates experiment N1 (two-host end-to-end).
func BenchmarkNetPairMatrix(b *testing.B) {
	l := newLab(b)
	var last *experiments.NetPairResult
	for i := 0; i < b.N; i++ {
		r, err := l.NetPair()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Penalty*100, "penalty-pct")
}

// BenchmarkValidationCrossCheck regenerates experiment V1.
func BenchmarkValidationCrossCheck(b *testing.B) {
	l := newLab(b)
	var last *experiments.CrossValResult
	for i := 0; i < b.N; i++ {
		r, err := l.Validation()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.MaxRelErr*100, "maxdev-pct")
}

// BenchmarkAblationGapThreshold regenerates ablation A6.
func BenchmarkAblationGapThreshold(b *testing.B) {
	l := newLab(b)
	var last *experiments.ThresholdResult
	for i := 0; i < b.N; i++ {
		r, err := l.AblationGapThreshold()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.StableHi-last.StableLo, "stable-range")
}

// BenchmarkClusterScaleOut regenerates experiment C1.
func BenchmarkClusterScaleOut(b *testing.B) {
	var last *experiments.ClusterResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.ClusterScaleOut()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Pack.Gbps(), "Gbps:pack")
	b.ReportMetric(last.Greedy.Gbps(), "Gbps:greedy")
}

// BenchmarkCostReduction regenerates experiment R1 (Sec. V-B application).
func BenchmarkCostReduction(b *testing.B) {
	l := newLab(b)
	var last *experiments.CostReductionResult
	for i := 0; i < b.N; i++ {
		r, err := l.CostReduction()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Saved*100, "saved-pct")
	b.ReportMetric(last.MaxRelErr*100, "maxerr-pct")
}
