// Hot-path microbenchmarks: the characterization sweep (Algorithm 1), the
// fluid transfer executor and the fabric solver. scripts/bench.sh runs these
// with a fixed -benchtime and records the results as BENCH_<rev>.json so the
// speedup trajectory is pinned across revisions (see docs/PERFORMANCE.md).
package numaio

import (
	"fmt"
	"testing"

	"numaio/internal/core"
	"numaio/internal/fabric"
	"numaio/internal/numa"
	"numaio/internal/simhost"
	"numaio/internal/topology"
	"numaio/internal/units"
)

// benchSystem boots a fresh simulated DL585 G7 (the 8-node reference
// machine).
func benchSystem(b *testing.B) *numa.System {
	b.Helper()
	sys, err := numa.NewSystem(topology.DL585G7())
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkCharacterize runs Algorithm 1 for one target and mode.
func BenchmarkCharacterize(b *testing.B) {
	sys := benchSystem(b)
	c, err := core.NewCharacterizer(sys, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Characterize(7, core.ModeWrite); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCharacterizeAll runs the whole-host sweep (targets × modes ×
// nodes × repeats) at increasing worker-pool widths. The sub-benchmark at
// p1 is the serial reference; wall-clock gains above it require free cores,
// while the fast-path gains (cached resources and routes, reused solver)
// show at every width.
func BenchmarkCharacterizeAll(b *testing.B) {
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			sys := benchSystem(b)
			c, err := core.NewCharacterizer(sys, core.Config{Parallelism: p})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.CharacterizeAll(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchTransfers builds a 32-transfer fluid workload over the DL585G7
// fabric: four copy streams from every node into node 7.
func benchTransfers(b *testing.B, m *topology.Machine) ([]fabric.Resource, []simhost.Transfer) {
	b.Helper()
	resources := fabric.MachineResources(m)
	var transfers []simhost.Transfer
	for n := topology.NodeID(0); n < 8; n++ {
		usages, err := fabric.CopyFlowUsages(m, n, 7)
		if err != nil {
			b.Fatal(err)
		}
		for k := 0; k < 4; k++ {
			transfers = append(transfers, simhost.Transfer{
				ID:     fmt.Sprintf("t%d-%d", int(n), k),
				Bytes:  units.Size(1+int(n)) * units.GiB, // staggered completions
				Usages: usages,
			})
		}
	}
	return resources, transfers
}

// BenchmarkRunFluid measures the fluid executor: 32 staggered transfers,
// eight completion phases.
func BenchmarkRunFluid(b *testing.B) {
	m := topology.DL585G7()
	resources, transfers := benchTransfers(b, m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simhost.RunFluid(resources, transfers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolver measures one max-min fair solve of 32 flows (the inner
// loop of every fluid phase): "fresh" pays full solver construction each
// round, "reused" keeps the resource table and Resets the flows — the
// pattern the fluid executor and the fio runner now use.
func BenchmarkSolver(b *testing.B) {
	m := topology.DL585G7()
	resources := fabric.MachineResources(m)
	var flows []fabric.Flow
	for n := topology.NodeID(0); n < 8; n++ {
		usages, err := fabric.CopyFlowUsages(m, n, 7)
		if err != nil {
			b.Fatal(err)
		}
		for k := 0; k < 4; k++ {
			flows = append(flows, fabric.Flow{ID: fmt.Sprintf("f%d-%d", int(n), k), Usages: usages})
		}
	}
	addAndSolve := func(b *testing.B, s *fabric.Solver) {
		for _, f := range flows {
			if err := s.AddFlow(f); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := s.Solve(); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := fabric.NewSolver()
			for _, r := range resources {
				if err := s.SetResource(r); err != nil {
					b.Fatal(err)
				}
			}
			addAndSolve(b, s)
		}
	})
	b.Run("reused", func(b *testing.B) {
		s := fabric.NewSolver()
		for _, r := range resources {
			if err := s.SetResource(r); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Reset()
			addAndSolve(b, s)
		}
	})
}

// BenchmarkSolverIncremental measures the dirty-set re-solve against the
// full re-level on a converged allocation. The workload is 8 disjoint
// components (eight node-local copy streams per DL585G7 node) whose
// staggered demand caps freeze one tier per water-filling round; each
// benchmark round removes and re-adds one node's stream, dirtying exactly
// one component. "incremental" re-levels just that component; "full" calls
// Invalidate first, forcing every component through the multi-round
// water-filling pass — the cost every phase paid before the solver kept
// converged state.
func BenchmarkSolverIncremental(b *testing.B) {
	m := topology.DL585G7()
	setup := func(b *testing.B) (*fabric.Solver, fabric.Flow) {
		s := fabric.NewSolver()
		for _, r := range fabric.MachineResources(m) {
			if err := s.SetResource(r); err != nil {
				b.Fatal(err)
			}
		}
		var victim fabric.Flow
		for n := topology.NodeID(0); n < 8; n++ {
			usages, err := fabric.CopyFlowUsages(m, n, n)
			if err != nil {
				b.Fatal(err)
			}
			for k := 0; k < 8; k++ {
				f := fabric.Flow{ID: fmt.Sprintf("f%d-%d", int(n), k), Usages: usages}
				if k < 7 {
					// Distinct demand tiers: one freeze round each.
					f.Demand = units.Bandwidth(0.2*float64(k+1)) * units.Gbps
				}
				if err := s.AddFlow(f); err != nil {
					b.Fatal(err)
				}
				if n == 0 && k == 0 {
					victim = f
				}
			}
		}
		if _, err := s.Solve(); err != nil {
			b.Fatal(err)
		}
		return s, victim
	}
	churn := func(b *testing.B, s *fabric.Solver, victim fabric.Flow, full bool) {
		if !s.RemoveFlow(victim.ID) {
			b.Fatalf("flow %s not found", victim.ID)
		}
		if err := s.AddFlow(victim); err != nil {
			b.Fatal(err)
		}
		if full {
			s.Invalidate()
		}
		if _, err := s.SolveIndexed(); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("incremental", func(b *testing.B) {
		s, victim := setup(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			churn(b, s, victim, false)
		}
	})
	b.Run("full", func(b *testing.B) {
		s, victim := setup(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			churn(b, s, victim, true)
		}
	})
}
