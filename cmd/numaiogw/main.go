// Command numaiogw is the fleet gateway: it terminates the numaiod v1 API
// in front of N replicas, routes each request to the replica owning its
// topology fingerprint on a consistent-hash ring, proxies to ring
// successors when the owner is down, replicates hot models to peers, and
// serves the fleet-wide placement endpoint POST /v1/fleet/place ("best
// node of the best host in the fleet"). See docs/FLEET.md.
//
// Usage:
//
//	numaiogw -config fleet.json [-addr host:port]
//	numaiogw -replicas http://h1:8081,http://h2:8082 [-addr host:port]
//	         [-vnodes n] [-replication n] [-hot-threshold n]
//	         [-health-interval d] [-breaker-threshold n] [-breaker-cooldown d]
//	         [-flight-events n] [-flight-dump]
//
// Like numaiod, the gateway keeps an always-on flight recorder of recent
// forwards and failovers (GET /debug/flightrecorder; -flight-events sizes
// the ring, negative disables). -flight-dump writes it to stderr on 5xx
// responses, and SIGQUIT dumps it on demand without stopping the gateway.
//
// Membership is static: a JSON config file ({"replicas": [{"name", "url"},
// ...], "vnodes", "replication", "hot_threshold"}) or a -replicas URL list
// (named r0, r1, ... in order). Flags override file values when both are
// given. The gateway prints "listening on http://ADDR" once bound and
// shuts down gracefully on SIGINT/SIGTERM.
//
// Exit status: 0 on clean shutdown, 1 on runtime failure, 2 on usage
// errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"numaio/internal/cli"
	"numaio/internal/fleet"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(cli.Main("numaiogw", run(ctx, os.Args[1:], os.Stdout)))
}

// fleetConfig resolves the membership config from -config or -replicas.
func fleetConfig(configPath, replicas string, vnodes, replication, hotThreshold int) (*fleet.Config, error) {
	var cfg *fleet.Config
	switch {
	case configPath != "":
		var err error
		cfg, err = fleet.LoadConfig(configPath)
		if err != nil {
			return nil, err
		}
	case replicas != "":
		cfg = &fleet.Config{}
		for i, url := range strings.Split(replicas, ",") {
			url = strings.TrimSpace(url)
			if url == "" {
				return nil, fmt.Errorf("empty replica URL at position %d", i)
			}
			cfg.Replicas = append(cfg.Replicas, fleet.Replica{
				Name: fmt.Sprintf("r%d", i),
				URL:  strings.TrimRight(url, "/"),
			})
		}
	default:
		return nil, cli.Usagef("one of -config or -replicas is required")
	}
	if vnodes > 0 {
		cfg.VNodes = vnodes
	}
	if replication > 0 {
		cfg.Replication = replication
	}
	if hotThreshold != 0 {
		cfg.HotThreshold = hotThreshold
	}
	return cfg, nil
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("numaiogw", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8090", "listen address (use :0 for an ephemeral port)")
	configPath := fs.String("config", "", "fleet membership config file (JSON)")
	replicas := fs.String("replicas", "", "comma-separated replica base URLs (alternative to -config; named r0, r1, ...)")
	vnodes := fs.Int("vnodes", 0, "virtual nodes per replica on the hash ring (0 = config value or default)")
	replication := fs.Int("replication", 0, "total copies of a hot model, owner included (0 = config value; 1 disables)")
	hotThreshold := fs.Int("hot-threshold", 0, "routed requests before a model replicates to peers (0 = config value or default, negative disables)")
	healthInterval := fs.Duration("health-interval", 2*time.Second, "active health-check period")
	breakerThreshold := fs.Int("breaker-threshold", 3, "consecutive failures that pull a replica out of rotation")
	breakerCooldown := fs.Duration("breaker-cooldown", 10*time.Second, "open-breaker cooldown before a replica is retried")
	timeout := fs.Duration("timeout", 30*time.Second, "per-forward HTTP timeout")
	flightEvents := fs.Int("flight-events", 0, "flight recorder ring capacity (0 = 4096, negative disables)")
	flightDump := fs.Bool("flight-dump", false, "dump the flight recorder to stderr on 5xx responses")
	quiet := fs.Bool("quiet", false, "suppress request and forward logs")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return cli.Usagef("unexpected arguments: %v", fs.Args())
	}
	if *configPath != "" && *replicas != "" {
		return cli.Usagef("-config and -replicas are mutually exclusive")
	}
	if *breakerThreshold < 1 {
		return cli.Usagef("-breaker-threshold must be at least 1, got %d", *breakerThreshold)
	}

	cfg, err := fleetConfig(*configPath, *replicas, *vnodes, *replication, *hotThreshold)
	if err != nil {
		return err
	}

	logDst := io.Writer(os.Stderr)
	if *quiet {
		logDst = io.Discard
	}
	logger := slog.New(slog.NewTextHandler(logDst, nil))

	var dumpDst io.Writer
	if *flightDump {
		dumpDst = os.Stderr
	}
	gw, err := fleet.NewGateway(fleet.GatewayConfig{
		Fleet:              cfg,
		Logger:             logger,
		Client:             &http.Client{Timeout: *timeout},
		BreakerThreshold:   *breakerThreshold,
		BreakerCooldown:    *breakerCooldown,
		HealthInterval:     *healthInterval,
		FlightRecorderSize: *flightEvents,
		FlightDump:         dumpDst,
	})
	if err != nil {
		return err
	}

	// SIGQUIT dumps the flight recorder to stderr without stopping the
	// gateway, mirroring numaiod.
	quitc := make(chan os.Signal, 1)
	signal.Notify(quitc, syscall.SIGQUIT)
	defer signal.Stop(quitc)
	go func() {
		for range quitc {
			fmt.Fprintln(os.Stderr, "numaiogw flight recorder dump (SIGQUIT):")
			if err := gw.DumpFlightRecorder(os.Stderr); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			fmt.Fprintln(os.Stderr)
		}
	}()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "listening on http://%s\n", ln.Addr())
	logger.Info("fleet gateway up",
		"replicas", len(cfg.Replicas),
		"vnodes", cfg.VNodes,
		"replication", cfg.Replication)

	healthCtx, stopHealth := context.WithCancel(ctx)
	defer stopHealth()
	go gw.Run(healthCtx)

	srv := &http.Server{Handler: gw.Handler()}
	errc := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
		close(errc)
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	logger.Info("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil {
		return err
	}
	fmt.Fprintln(out, "numaiogw: drained, bye")
	return nil
}
