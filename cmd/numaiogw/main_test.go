package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"numaio/internal/cli"
	"numaio/internal/service"
)

// Exit-code contract (internal/cli): 0 success or -h, 1 runtime failure,
// 2 usage error.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"help", []string{"-h"}, 0},
		{"unknown flag", []string{"-definitely-not-a-flag"}, 2},
		{"unexpected positional", []string{"positional"}, 2},
		{"no membership", nil, 2},
		{"config and replicas", []string{"-config", "x.json", "-replicas", "http://127.0.0.1:1"}, 2},
		{"bad breaker threshold", []string{"-replicas", "http://127.0.0.1:1", "-breaker-threshold", "0"}, 2},
		{"missing config file", []string{"-config", "/definitely/not/a/file.json"}, 1},
		{"unusable address", []string{"-replicas", "http://127.0.0.1:1", "-addr", "256.256.256.256:0"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(context.Background(), tc.args, io.Discard)
			if got := cli.ExitCode(err); got != tc.want {
				t.Errorf("args %v: exit code %d (err: %v), want %d", tc.args, got, err, tc.want)
			}
		})
	}
}

// TestFleetConfigFromFlags checks the -replicas spelling and flag
// overrides of config-file values.
func TestFleetConfigFromFlags(t *testing.T) {
	cfg, err := fleetConfig("", "http://a:1, http://b:2/", 7, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Replicas) != 2 || cfg.Replicas[0].Name != "r0" || cfg.Replicas[1].URL != "http://b:2" {
		t.Errorf("replicas = %+v", cfg.Replicas)
	}
	if cfg.VNodes != 7 || cfg.Replication != 2 || cfg.HotThreshold != 3 {
		t.Errorf("tuning = %+v", cfg)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.json")
	file := `{"replicas": [{"name": "alpha", "url": "http://a:1"}], "vnodes": 16}`
	if err := os.WriteFile(path, []byte(file), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err = fleetConfig(path, "", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.VNodes != 16 || cfg.Replicas[0].Name != "alpha" {
		t.Errorf("file config = %+v", cfg)
	}
}

type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeAndGracefulShutdown boots a real replica (in-process numaiod
// handler) plus the gateway binary's run(), exercises a routed predict and
// the fleet endpoints through the gateway, then cancels the signal context
// and verifies a clean shutdown.
func TestServeAndGracefulShutdown(t *testing.T) {
	svc := service.New(service.Config{Workers: 2})
	replica := httptest.NewServer(svc.Handler())
	defer replica.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-quiet",
			"-replicas", replica.URL,
			"-health-interval", "100ms",
		}, &out)
	}()

	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("gateway never announced its address; output: %q", out.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "listening on "); ok {
				base = strings.TrimSpace(rest)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	predict := `{"machine": "intel-4s4n", "config": {"repeats": 1, "sigma": -1},
	             "target": 0, "mode": "write", "mix": {"0": 0.5, "2": 0.5}}`
	resp, err = http.Post(base+"/v1/predict", "application/json", strings.NewReader(predict))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict through gateway = %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("gateway response carries no request ID")
	}

	place := `{"machine": "intel-4s4n", "config": {"repeats": 1, "sigma": -1}, "target": 0}`
	resp, err = http.Post(base+"/v1/fleet/place", "application/json", strings.NewReader(place))
	if err != nil {
		t.Fatal(err)
	}
	var placed struct {
		Host string `json:"host"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&placed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || placed.Host != "r0" {
		t.Fatalf("fleet place = %d host %q", resp.StatusCode, placed.Host)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"numaiogw_replicas 1",
		"numaiogw_routed_total 1",
		"numaiogw_fleet_place_total 1",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("gateway did not shut down after context cancellation")
	}
	if !strings.Contains(out.String(), "drained") {
		t.Errorf("no drain confirmation in output: %q", out.String())
	}
}
