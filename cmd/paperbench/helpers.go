package main

import (
	"fmt"
	"strings"

	"numaio/internal/core"
	"numaio/internal/experiments"
	"numaio/internal/units"
)

// maxDiagonalExcept0 returns the largest local STREAM cell other than
// node 0's.
func maxDiagonalExcept0(bw [][]units.Bandwidth) float64 {
	best := 0.0
	for i := 1; i < len(bw); i++ {
		if v := bw[i][i].Gbps(); v > best {
			best = v
		}
	}
	return best
}

// classSets formats a model's class memberships like "{6,7} | {0,1,4,5}".
func classSets(m *core.Model) string {
	var parts []string
	for _, c := range m.Classes {
		ns := make([]string, 0, len(c.Nodes))
		for _, n := range c.Nodes {
			ns = append(ns, fmt.Sprintf("%d", int(n)))
		}
		parts = append(parts, "{"+strings.Join(ns, ",")+"}")
	}
	return strings.Join(parts, " | ")
}

// classAvgSummary lists per-operation class averages of a Table IV/V result.
func classAvgSummary(r *experiments.Table45Result) string {
	var parts []string
	for _, op := range r.Ops {
		var avgs []string
		for _, row := range r.Rows {
			avgs = append(avgs, fmt.Sprintf("%.1f", row.Stats[op].Avg.Gbps()))
		}
		parts = append(parts, op+" "+strings.Join(avgs, "/"))
	}
	return strings.Join(parts, "; ") + " (class averages, Gb/s)."
}
