// Command paperbench regenerates every table and figure of the paper's
// evaluation on the simulated testbed and reports measured-vs-paper values.
//
// Usage:
//
//	paperbench                  # print all experiment tables
//	paperbench -md              # emit the EXPERIMENTS.md markdown document
//	paperbench -only F5         # run a single experiment (see -list for all IDs)
//	paperbench -list            # list experiment IDs
//	paperbench -parallelism 4   # parallel characterizations (same output, less wall time)
//	paperbench -chaos chaos     # rerun the Tables IV/V sweep under a fault plan
//	paperbench -trace t.json    # record the characterizations as a Chrome trace
//	paperbench -stage-report    # per-stage time breakdown after the run
//
// With -chaos the characterization reruns under the named fault plan (or a
// JSON plan file; see internal/faults) with the resilience machinery on,
// and the output is the chaos-survival report: which performance classes of
// Tables IV and V survive the injected faults. Same seed, same report —
// chaos runs are as deterministic as clean ones.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"numaio/internal/cli"
	"numaio/internal/experiments"
	"numaio/internal/faults"
	"numaio/internal/report"
)

func main() {
	os.Exit(cli.Main("paperbench", run(os.Args[1:], os.Stdout)))
}

// section is one reproducible artifact.
type section struct {
	ID    string
	Title string
	// Paper summarizes what the paper reports for this artifact.
	Paper string
	// Run produces the rendered tables and a measured-shape summary.
	Run func(l *experiments.Lab) (tables []*report.Table, shape string, err error)
}

func sections() []section {
	return []section{
		{
			ID: "T1", Title: "Table I — NUMA factors",
			Paper: "Intel 4s/4n: 1.5; AMD 4s/8n: 2.7; AMD 8s/8n: 2.8; HP blade 32n: 5.5.",
			Run: func(l *experiments.Lab) ([]*report.Table, string, error) {
				r, err := experiments.Table1()
				if err != nil {
					return nil, "", err
				}
				var parts []string
				for _, row := range r.Rows {
					parts = append(parts, fmt.Sprintf("%s: %.2f (paper %.1f)", row.Server, row.Measured, row.Paper))
				}
				return []*report.Table{r.Table()}, strings.Join(parts, "; ") + ".", nil
			},
		},
		{
			ID: "T2", Title: "Table II — testbed configuration",
			Paper: "HP DL585 G7: 32 cores / 8 nodes, 32 GB, 5 MB LLC, PCIe Gen2 x8, a 40 GbE RoCE " +
				"adapter and LSI Nytro SSDs on node 7.",
			Run: func(l *experiments.Lab) ([]*report.Table, string, error) {
				r, err := l.Table2()
				if err != nil {
					return nil, "", err
				}
				return []*report.Table{r.Table()}, "configuration read back from the machine model.", nil
			},
		},
		{
			ID: "T3", Title: "Table III — I/O test parameters",
			Paper: "400 GB per process, TCP Cubic, 128 KiB blocks, 9000-byte frames, iodepth 16.",
			Run: func(l *experiments.Lab) ([]*report.Table, string, error) {
				r, err := l.Table3()
				if err != nil {
					return nil, "", err
				}
				return []*report.Table{r.Table()}, "parameters mirrored by the fio job defaults.", nil
			},
		},
		{
			ID: "F3", Title: "Fig. 3 — STREAM Copy bandwidth matrix",
			Paper: "Asymmetric: CPU7/MEM4 = 21.34 Gb/s beats CPU7/MEM{2,3}, yet CPU4/MEM7 = 18.45 Gb/s " +
				"loses to CPU{2,3}/MEM7; node 0's local run beats every other local run; no topology " +
				"of Fig. 1 explains the ordering via hop distance.",
			Run: func(l *experiments.Lab) ([]*report.Table, string, error) {
				r, err := l.Figure3()
				if err != nil {
					return nil, "", err
				}
				mx := r.Matrix
				shape := fmt.Sprintf(
					"CPU7/MEM4 = %.2f vs CPU7/MEM2 = %.2f; CPU4/MEM7 = %.2f vs CPU2/MEM7 = %.2f; "+
						"local(0) = %.2f vs best other local = %.2f.",
					mx.BW[7][4].Gbps(), mx.BW[7][2].Gbps(), mx.BW[4][7].Gbps(), mx.BW[2][7].Gbps(),
					mx.BW[0][0].Gbps(), maxDiagonalExcept0(mx.BW))
				return []*report.Table{r.Table()}, shape, nil
			},
		},
		{
			ID: "F4", Title: "Fig. 4 — CPU-centric and memory-centric STREAM models of node 7",
			Paper: "Two distinct per-node orderings; neither matches the measured I/O class structure " +
				"(the mismatch motivating the proposed methodology).",
			Run: func(l *experiments.Lab) ([]*report.Table, string, error) {
				r, err := l.Figure4()
				if err != nil {
					return nil, "", err
				}
				t, err := r.Table()
				if err != nil {
					return nil, "", err
				}
				return []*report.Table{t},
					"Both models peak at the local cell and disagree on remote ordering, as in the paper.", nil
			},
		},
		{
			ID: "F5", Title: "Fig. 5 — TCP send/receive vs parallel streams",
			Paper: "Bandwidth grows until 4 streams then plateaus (~20-21 Gb/s); node 6 often beats local " +
				"node 7; send classes {2,3} starve at ~16.2 Gb/s; receive on node 4 drops to ~14.4 Gb/s.",
			Run: func(l *experiments.Lab) ([]*report.Table, string, error) {
				r, err := l.Figure5()
				if err != nil {
					return nil, "", err
				}
				ts, err := r.Send.Table()
				if err != nil {
					return nil, "", err
				}
				tr, err := r.Recv.Table()
				if err != nil {
					return nil, "", err
				}
				s6, _ := r.Send.BWFor(6, 4)
				s7, _ := r.Send.BWFor(7, 4)
				s2, _ := r.Send.BWFor(2, 4)
				r4, _ := r.Recv.BWFor(4, 4)
				shape := fmt.Sprintf("4-stream send: node6 %.2f > node7 %.2f > node2 %.2f; 4-stream receive node4 %.2f.",
					s6.Gbps(), s7.Gbps(), s2.Gbps(), r4.Gbps())
				return []*report.Table{ts, tr}, shape, nil
			},
		},
		{
			ID: "F6", Title: "Fig. 6 — RDMA_WRITE / RDMA_READ vs parallel streams",
			Paper: "Offloaded and stable; WRITE: classes 1,2 at ~23.3, class 3 {2,3} at ~17.1; READ: " +
				"{6,7,2,3} at ~22.0, {0,1,5} at ~18.3, {4} at ~16.1 — inverting the STREAM ordering of {0,1} vs {2,3}.",
			Run: func(l *experiments.Lab) ([]*report.Table, string, error) {
				r, err := l.Figure6()
				if err != nil {
					return nil, "", err
				}
				tw, err := r.Write.Table()
				if err != nil {
					return nil, "", err
				}
				td, err := r.Read.Table()
				if err != nil {
					return nil, "", err
				}
				w7, _ := r.Write.BWFor(7, 2)
				w2, _ := r.Write.BWFor(2, 2)
				r2, _ := r.Read.BWFor(2, 2)
				r0, _ := r.Read.BWFor(0, 2)
				r4, _ := r.Read.BWFor(4, 2)
				shape := fmt.Sprintf("WRITE: node7 %.2f, node2 %.2f; READ: node2 %.2f > node0 %.2f > node4 %.2f.",
					w7.Gbps(), w2.Gbps(), r2.Gbps(), r0.Gbps(), r4.Gbps())
				return []*report.Table{tw, td}, shape, nil
			},
		},
		{
			ID: "F7", Title: "Fig. 7 — SSD write/read over two cards",
			Paper: "Write: ~28.8 for classes 1-2, ~18.0 for {2,3}; read: ~34.7 local down to ~18.5 on node 4; " +
				"write rates track the send models, read rates the receive models.",
			Run: func(l *experiments.Lab) ([]*report.Table, string, error) {
				r, err := l.Figure7()
				if err != nil {
					return nil, "", err
				}
				tw, err := r.Write.Table()
				if err != nil {
					return nil, "", err
				}
				td, err := r.Read.Table()
				if err != nil {
					return nil, "", err
				}
				w7, _ := r.Write.BWFor(7, 2)
				w2, _ := r.Write.BWFor(2, 2)
				r7, _ := r.Read.BWFor(7, 2)
				r4, _ := r.Read.BWFor(4, 2)
				shape := fmt.Sprintf("write node7 %.2f / node2 %.2f; read node7 %.2f / node4 %.2f.",
					w7.Gbps(), w2.Gbps(), r7.Gbps(), r4.Gbps())
				return []*report.Table{tw, td}, shape, nil
			},
		},
		{
			ID: "F10", Title: "Fig. 10 — proposed memcpy model of node 7",
			Paper: "Write model classes {6,7} | {0,1,4,5} | {2,3}; read model classes {6,7} | {2,3} | {0,1,5} | {4}.",
			Run: func(l *experiments.Lab) ([]*report.Table, string, error) {
				r, err := l.Figure10()
				if err != nil {
					return nil, "", err
				}
				shape := fmt.Sprintf("write classes: %v; read classes: %v.",
					classSets(r.Write), classSets(r.Read))
				return []*report.Table{r.Table()}, shape, nil
			},
		},
		{
			ID: "T4", Title: "Table IV — device-write performance model",
			Paper: "memcpy 51.2/44.5/26.6; TCP sender 20.3/20.4/16.2; RDMA_WRITE 23.3/23.2/17.1; " +
				"SSD write 28.8/28.5/18.0 (class averages, Gb/s).",
			Run: func(l *experiments.Lab) ([]*report.Table, string, error) {
				r, err := l.Table4()
				if err != nil {
					return nil, "", err
				}
				return []*report.Table{r.Table()}, classAvgSummary(r), nil
			},
		},
		{
			ID: "T5", Title: "Table V — device-read performance model",
			Paper: "memcpy 49.1/48.6/40.4/27.9; TCP receiver 21.2/20.0/20.6/14.4; RDMA_READ 22.0/22.0/18.3/16.1; " +
				"SSD read 34.7/33.1/30.1/18.5 (class averages, Gb/s).",
			Run: func(l *experiments.Lab) ([]*report.Table, string, error) {
				r, err := l.Table5()
				if err != nil {
					return nil, "", err
				}
				return []*report.Table{r.Table()}, classAvgSummary(r), nil
			},
		},
		{
			ID: "R1", Title: "Sec. V-B — characterization cost reduction",
			Paper: "Testing one node per class of the read model covers all eight nodes with four runs " +
				"— a 50% evaluation-cost decrease — while giving the same results as the full sweep.",
			Run: func(l *experiments.Lab) ([]*report.Table, string, error) {
				r, err := l.CostReduction()
				if err != nil {
					return nil, "", err
				}
				shape := fmt.Sprintf("%d runs instead of %d (%.0f%% saved), extrapolation error <= %.1f%%.",
					r.RepRuns, r.FullRuns, r.Saved*100, r.MaxRelErr*100)
				return []*report.Table{r.Table()}, shape, nil
			},
		},
		{
			ID: "E1", Title: "Eq. 1 — multi-user aggregate prediction",
			Paper: "Predicted 20.017 Gb/s vs measured 19.415 Gb/s: 3.1% relative error.",
			Run: func(l *experiments.Lab) ([]*report.Table, string, error) {
				r, err := l.Eq1()
				if err != nil {
					return nil, "", err
				}
				shape := fmt.Sprintf("predicted %.3f vs measured %.3f: %.1f%% relative error.",
					r.Predicted.Gbps(), r.Measured.Gbps(), r.RelErr*100)
				return []*report.Table{r.Table()}, shape, nil
			},
		},
		{
			ID: "S1", Title: "Sec. V-B — scheduler placement",
			Paper: "Spreading I/O tasks over the equivalent classes beats binding everything to the " +
				"device's local node (contention on interrupts, cores and the memory controller).",
			Run: func(l *experiments.Lab) ([]*report.Table, string, error) {
				r, err := l.Scheduler()
				if err != nil {
					return nil, "", err
				}
				shape := fmt.Sprintf("memcpy staging: class-balanced %.1f vs local-only %.1f Gb/s; crossover at %d tasks.",
					r.Memcpy.Aggregate[3].Gbps(), r.Memcpy.Aggregate[0].Gbps(), r.Crossover)
				return []*report.Table{r.Table(), r.SweepTable()}, shape, nil
			},
		},
		{
			ID: "A1", Title: "Ablation — PIO vs DMA routing (Sec. IV-C)",
			Paper: "The paper attributes the STREAM/I-O mismatch to PIO and DMA taking distinct paths; " +
				"the simulator makes the two modes' rates diverge per node pair.",
			Run: func(l *experiments.Lab) ([]*report.Table, string, error) {
				r, err := l.AblationPIOvsDMA()
				if err != nil {
					return nil, "", err
				}
				return []*report.Table{r.Table()}, "DMA/PIO ratios differ per pair, so one cannot predict the other.", nil
			},
		},
		{
			ID: "A2", Title: "Ablation — interrupt load on the device's node",
			Paper: "Interrupts are steered to node 7 (Sec. III-B2); the paper observes node 6 beating node 7.",
			Run: func(l *experiments.Lab) ([]*report.Table, string, error) {
				r, err := l.AblationIRQ()
				if err != nil {
					return nil, "", err
				}
				shape := fmt.Sprintf("with IRQ: node6 %.2f > node7 %.2f; without: %.2f ≈ %.2f.",
					r.WithIRQ[6].Gbps(), r.WithIRQ[7].Gbps(),
					r.WithoutIRQ[6].Gbps(), r.WithoutIRQ[7].Gbps())
				return []*report.Table{r.Table()}, shape, nil
			},
		},
		{
			ID: "N1", Title: "Two-host end-to-end TCP (Fig. 2 testbed)",
			Paper: "The cited 40 GbE study ([3]) reports up to ~30% end-to-end loss when processes land " +
				"on the wrong cores at either end; the paper's Fig. 2 testbed pairs two identical hosts.",
			Run: func(l *experiments.Lab) ([]*report.Table, string, error) {
				r, err := l.NetPair()
				if err != nil {
					return nil, "", err
				}
				shape := fmt.Sprintf("worst-case misplacement penalty %.0f%% across all binding pairs.", r.Penalty*100)
				return []*report.Table{r.Table()}, shape, nil
			},
		},
		{
			ID: "A4", Title: "Ablation — topology inference from bandwidth (Sec. IV-A)",
			Paper: "The connectivity inferred from the measured data matches none of the published " +
				"Fig. 1 wirings, so physical distance cannot be read off bandwidth.",
			Run: func(l *experiments.Lab) ([]*report.Table, string, error) {
				r, err := l.AblationTopologyInference()
				if err != nil {
					return nil, "", err
				}
				shape := fmt.Sprintf("best candidate scores %.2f (inconclusive: %v); hop-governed sanity data scores %.2f.",
					r.Matches[0].Score, !r.Conclusive, r.IdealScore)
				return []*report.Table{r.Table()}, shape, nil
			},
		},
		{
			ID: "A5", Title: "Ablation — re-characterization after link degradation",
			Paper: "Not in the paper (future-work direction): the methodology makes re-modelling after " +
				"hardware changes cheap because no I/O benchmark is needed.",
			Run: func(l *experiments.Lab) ([]*report.Table, string, error) {
				r, err := l.AblationLinkDegradation()
				if err != nil {
					return nil, "", err
				}
				shape := fmt.Sprintf("node 0 moves from class %d to class %d (%.1f Gb/s) while node 1 reroutes and keeps class 2.",
					r.Node0ClassBefore, r.Node0ClassAfter, r.DegradedBandwidth.Gbps())
				return []*report.Table{r.Table()}, shape, nil
			},
		},
		{
			ID: "C1", Title: "Cluster scale-out (multi-host scheduling)",
			Paper: "The paper motivates the models with multi-user/multi-task cluster environments " +
				"(Sec. I-A); packing all tasks onto one host's adapter wastes the rest.",
			Run: func(l *experiments.Lab) ([]*report.Table, string, error) {
				r, err := experiments.ClusterScaleOut()
				if err != nil {
					return nil, "", err
				}
				shape := fmt.Sprintf("pack-first %.1f vs model-greedy %.1f Gb/s over %d hosts.",
					r.Pack.Gbps(), r.Greedy.Gbps(), r.Hosts)
				return []*report.Table{r.Table()}, shape, nil
			},
		},
		{
			ID: "A6", Title: "Ablation — classification gap-threshold sensitivity",
			Paper: "Not in the paper: the clustering's one free parameter. The paper's class counts " +
				"(3 write, 4 read) should hold over a wide threshold range.",
			Run: func(l *experiments.Lab) ([]*report.Table, string, error) {
				r, err := l.AblationGapThreshold()
				if err != nil {
					return nil, "", err
				}
				shape := fmt.Sprintf("paper's class counts stable for thresholds in [%.2f, %.2f].",
					r.StableLo, r.StableHi)
				return []*report.Table{r.Table()}, shape, nil
			},
		},
		{
			ID: "V1", Title: "Validation — fluid model vs block-level simulation",
			Paper: "Not in the paper: internal cross-check that the analytic bandwidth model matches a " +
				"discrete block-by-block execution of the same scenario.",
			Run: func(l *experiments.Lab) ([]*report.Table, string, error) {
				r, err := l.Validation()
				if err != nil {
					return nil, "", err
				}
				shape := fmt.Sprintf("maximum per-transfer deviation %.1f%%.", r.MaxRelErr*100)
				return []*report.Table{r.Table()}, shape, nil
			},
		},
		{
			ID: "A3", Title: "Ablation — model baselines",
			Paper: "Hop distance and STREAM models cannot rank nodes for I/O; the memcpy iomodel can.",
			Run: func(l *experiments.Lab) ([]*report.Table, string, error) {
				r, err := l.AblationBaselines()
				if err != nil {
					return nil, "", err
				}
				var parts []string
				for _, row := range r.Rows {
					parts = append(parts, fmt.Sprintf("%s: %.2f", row.Model, row.Spearman))
				}
				return []*report.Table{r.Table()}, "Spearman rho — " + strings.Join(parts, "; ") + ".", nil
			},
		},
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	md := fs.Bool("md", false, "emit the EXPERIMENTS.md markdown document")
	only := fs.String("only", "", "run a single experiment by ID")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	parallelism := fs.Int("parallelism", 0, "characterization worker-pool width (0 = serial; output is identical at any setting)")
	chaos := fs.String("chaos", "", "chaos-survival report under a fault plan: "+strings.Join(faults.PlanNames(), ", ")+", or a JSON plan file")
	chaosSeed := fs.Uint64("chaos-seed", 0, "override the fault plan's seed (0 keeps the plan's own)")
	trace := cli.NewTraceFlags(fs)
	if err := cli.Parse(fs, args); err != nil {
		return err
	}
	if *list {
		for _, s := range sections() {
			fmt.Fprintf(out, "%-4s %s\n", s.ID, s.Title)
		}
		return nil
	}
	if *chaosSeed != 0 && *chaos == "" {
		return cli.Usagef("-chaos-seed needs -chaos")
	}

	lab, err := experiments.NewLab()
	if err != nil {
		return err
	}
	lab.Parallelism = *parallelism
	lab.Tracer = trace.Tracer()

	if *chaos != "" {
		if *md || *only != "" {
			return cli.Usagef("-chaos is a standalone report; drop -md/-only")
		}
		plan, err := faults.Load(*chaos)
		if err != nil {
			return err
		}
		if *chaosSeed != 0 {
			plan.Seed = *chaosSeed
		}
		r, err := lab.ChaosSurvival(plan)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, r.Table().Render())
		fmt.Fprintln(out, r.ResilienceTable().Render())
		fmt.Fprintf(out, "shape: %s\n", r.Summary())
		return nil
	}

	// Canonical document order: paper artifacts first, then applications,
	// extensions, ablations and validation.
	order := map[string]int{}
	for i, id := range []string{
		"T1", "T2", "T3", "F3", "F4", "F5", "F6", "F7", "F10", "T4", "T5",
		"R1", "E1", "S1", "N1", "C1",
		"A1", "A2", "A3", "A4", "A5", "A6", "V1",
	} {
		order[id] = i
	}
	secs := sections()
	sort.SliceStable(secs, func(i, j int) bool { return order[secs[i].ID] < order[secs[j].ID] })

	if *md {
		fmt.Fprint(out, mdHeader)
	}
	matched := false
	for _, s := range secs {
		if *only != "" && !strings.EqualFold(*only, s.ID) {
			continue
		}
		matched = true
		tables, shape, err := s.Run(lab)
		if err != nil {
			return fmt.Errorf("%s: %w", s.ID, err)
		}
		if *md {
			fmt.Fprintf(out, "## %s (%s)\n\n", s.Title, s.ID)
			fmt.Fprintf(out, "**Paper reports:** %s\n\n", s.Paper)
			fmt.Fprintf(out, "**Measured here:** %s\n\n", shape)
			for _, t := range tables {
				title := t.Title
				t.Title = ""
				fmt.Fprintf(out, "%s\n\n```\n%s```\n\n", title, t.Render())
			}
			continue
		}
		fmt.Fprintf(out, "=== %s: %s ===\n", s.ID, s.Title)
		for _, t := range tables {
			fmt.Fprintln(out, t.Render())
		}
		fmt.Fprintf(out, "shape: %s\n\n", shape)
	}
	if !matched {
		return cli.Usagef("unknown experiment ID %q (use -list)", *only)
	}
	if *md {
		// Keep the markdown document clean: trace confirmation and the
		// stage report go to stderr, not into EXPERIMENTS.md.
		return trace.Finish(os.Stderr)
	}
	return trace.Finish(out)
}

const mdHeader = `# EXPERIMENTS — paper vs. measured

Every table and figure of the paper's evaluation, regenerated on the
simulated DL585 G7 testbed (see DESIGN.md for the substitution rationale and
calibration). Absolute Gb/s values are calibrated approximations; the claims
under test are the *shapes*: orderings, class memberships, crossovers and
ratios. Regenerate this file with:

    go run ./cmd/paperbench -md > EXPERIMENTS.md

`
