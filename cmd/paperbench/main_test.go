package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "T1"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Table I") || strings.Contains(s, "Fig. 3") {
		t.Errorf("only T1 expected:\n%s", s)
	}
}

func TestMarkdownMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-md", "-only", "E1"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"# EXPERIMENTS — paper vs. measured",
		"**Paper reports:** Predicted 20.017",
		"**Measured here:**",
		"```",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("markdown missing %q:\n%s", want, s)
		}
	}
}

func TestAllSectionsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness in short mode")
	}
	var out bytes.Buffer
	if err := run(nil, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, sec := range sections() {
		if !strings.Contains(s, "=== "+sec.ID+":") {
			t.Errorf("section %s missing from full run", sec.ID)
		}
	}
}

func TestBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("unknown flag should fail")
	}
}

func TestListExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, id := range []string{"T1", "T2", "T3", "F3", "F10", "T4", "T5", "E1", "R1", "S1", "N1", "C1", "V1", "A1", "A6"} {
		if !strings.Contains(s, id+" ") {
			t.Errorf("list missing %s:\n%s", id, s)
		}
	}
}
