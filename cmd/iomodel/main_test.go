package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"numaio/internal/core"
)

func TestBothModesWithJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	var out bytes.Buffer
	if err := run([]string{"-o", path, "-mode", "write"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "I/O device write model of node 7") {
		t.Errorf("output:\n%s", out.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	model, err := core.LoadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if model.Mode != core.ModeWrite || model.NumClasses() != 3 {
		t.Errorf("persisted model = %+v", model)
	}
}

func TestReadMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-mode", "read"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cost reduction 50%") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestBothDefault(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "write model") || !strings.Contains(s, "read model") {
		t.Errorf("output:\n%s", s)
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-mode", "sideways"}, &out); err == nil {
		t.Error("bad mode should fail")
	}
	if err := run([]string{"-machine", "warp"}, &out); err == nil {
		t.Error("unknown machine should fail")
	}
	if err := run([]string{"-target", "42"}, &out); err == nil {
		t.Error("unknown target should fail")
	}
	if err := run([]string{"-o", "/nonexistent-dir/x.json"}, &out); err == nil {
		t.Error("unwritable output should fail")
	}
	if err := run([]string{"-repeats", "-3"}, &out); err == nil {
		t.Error("negative repeats should fail")
	}
}

func TestWholeHostModel(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "machine.json")
	var out bytes.Buffer
	if err := run([]string{"-all", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "whole-host cost reduction") {
		t.Errorf("output:\n%s", out.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	mm, err := core.LoadMachineJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(mm.Models) != 16 {
		t.Errorf("persisted models = %d, want 16", len(mm.Models))
	}
}

func TestGapThresholdFlag(t *testing.T) {
	var out bytes.Buffer
	// A tiny threshold fragments the remotes into more classes.
	if err := run([]string{"-mode", "read", "-gap", "0.02"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "cost reduction 50%") {
		t.Errorf("tiny gap threshold should change the class count:\n%s", out.String())
	}
	if err := run([]string{"-gap", "7"}, &out); err == nil {
		t.Error("out-of-range gap should fail")
	}
}
