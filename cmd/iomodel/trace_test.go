package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTraceFile: iomodel -trace on dl585g7 must produce Chrome trace-event
// JSON with one measurement span per (node, mode, repeat) cell plus the
// sweep spans, and -stage-report must print the breakdown table.
func TestTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var out bytes.Buffer
	if err := run([]string{
		"-machine", "dl585g7", "-mode", "both", "-repeats", "2",
		"-trace", path, "-stage-report",
	}, &out); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	var measures, sweeps int
	for _, e := range doc.TraceEvents {
		switch e.Cat {
		case "measure":
			if e.Ph != "X" {
				t.Errorf("measure event %q has phase %q, want X", e.Name, e.Ph)
			}
			measures++
		case "characterize":
			sweeps++
		}
	}
	// dl585g7 has 8 nodes; -repeats 2 in both modes → 8×2×2 cells.
	if want := 8 * 2 * 2; measures != want {
		t.Errorf("trace has %d measure spans, want %d", measures, want)
	}
	if sweeps != 2 {
		t.Errorf("trace has %d characterize sweeps, want 2 (one per mode)", sweeps)
	}

	s := out.String()
	if !strings.Contains(s, "per-stage time breakdown") ||
		!strings.Contains(s, "characterize") || !strings.Contains(s, "measure") {
		t.Errorf("stage report missing from output:\n%s", s)
	}
	if !strings.Contains(s, "trace: ") {
		t.Errorf("trace confirmation line missing from output:\n%s", s)
	}
}

// TestTraceUnwritable: a trace path that cannot be created is a runtime
// failure (exit 1), reported after the model tables.
func TestTraceUnwritable(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-mode", "write", "-trace", filepath.Join(t.TempDir(), "no", "such", "dir", "t.json")}, &out)
	if err == nil {
		t.Fatal("expected error for unwritable trace path")
	}
}
