// Command iomodel is the paper's characterization tool (Algorithm 1): it
// builds the I/O bandwidth performance model of a target node with memory
// copies only, classifies the nodes, and optionally saves the model as JSON
// for schedulers to load.
//
// Usage:
//
//	iomodel [-machine profile] [-target node] [-mode write|read|both]
//	        [-threads n] [-repeats n] [-parallelism n] [-o model.json]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"numaio/internal/cli"
	"numaio/internal/core"
	"numaio/internal/numa"
	"numaio/internal/report"
	"numaio/internal/topology"
)

func main() {
	os.Exit(cli.Main("iomodel", run(os.Args[1:], os.Stdout)))
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("iomodel", flag.ContinueOnError)
	machine := fs.String("machine", "dl585g7", "machine profile")
	target := fs.Int("target", 7, "node the I/O device is attached to")
	mode := fs.String("mode", "both", "write, read, or both")
	threads := fs.Int("threads", 0, "copy threads (0 = one per target core)")
	repeats := fs.Int("repeats", 0, "repetitions per node (0 = default)")
	all := fs.Bool("all", false, "characterize every node as a target (whole-host model)")
	gap := fs.Float64("gap", 0, "classification gap threshold in (0,1); 0 = default 0.2")
	parallelism := fs.Int("parallelism", 0, "measurement worker-pool width (0 = serial; results are identical at any setting)")
	outPath := fs.String("o", "", "write the model(s) as JSON to this file")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	m, err := cli.Machine(*machine)
	if err != nil {
		return err
	}
	sys, err := numa.NewSystem(m)
	if err != nil {
		return err
	}
	c, err := core.NewCharacterizer(sys, core.Config{
		Threads: *threads, Repeats: *repeats, GapThreshold: *gap,
		Parallelism: *parallelism,
	})
	if err != nil {
		return err
	}

	if *all {
		mm, err := c.CharacterizeAll()
		if err != nil {
			return err
		}
		t := report.NewTable(
			fmt.Sprintf("whole-host I/O model of %s", m.Name),
			"target", "mode", "classes", "class sets")
		for _, model := range mm.Models {
			sets := ""
			for i, cls := range model.Classes {
				if i > 0 {
					sets += " | "
				}
				sets += fmt.Sprintf("%v", cls.Nodes)
			}
			t.AddRow(fmt.Sprintf("%d", int(model.Target)), model.Mode.String(),
				fmt.Sprintf("%d", model.NumClasses()), sets)
		}
		if _, err := fmt.Fprint(out, t.Render()); err != nil {
			return err
		}
		fmt.Fprintf(out, "whole-host cost reduction: %.0f%%\n", mm.CostReduction()*100)
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				return err
			}
			defer f.Close()
			return mm.SaveJSON(f)
		}
		return nil
	}

	var modes []core.Mode
	switch *mode {
	case "write":
		modes = []core.Mode{core.ModeWrite}
	case "read":
		modes = []core.Mode{core.ModeRead}
	case "both":
		modes = []core.Mode{core.ModeWrite, core.ModeRead}
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	var jsonOut io.WriteCloser
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		jsonOut = f
	}

	for _, md := range modes {
		model, err := c.Characterize(topology.NodeID(*target), md)
		if err != nil {
			return err
		}
		t := report.NewTable(
			fmt.Sprintf("I/O device %s model of node %d on %s", md, *target, m.Name),
			"node", "bandwidth (Gb/s)", "class")
		for _, s := range model.Samples {
			cls, err := model.ClassOf(s.Node)
			if err != nil {
				return err
			}
			t.AddRow(fmt.Sprintf("%d", int(s.Node)), report.Gbps2(s.Bandwidth),
				fmt.Sprintf("%d", cls.Rank))
		}
		if _, err := fmt.Fprint(out, t.Render()); err != nil {
			return err
		}
		fmt.Fprintf(out, "representatives: %v; cost reduction %.0f%%\n\n",
			model.RepresentativeNodes(), model.CostReduction()*100)
		if jsonOut != nil {
			if err := model.SaveJSON(jsonOut); err != nil {
				return err
			}
		}
	}
	return nil
}
