// Command iomodel is the paper's characterization tool (Algorithm 1): it
// builds the I/O bandwidth performance model of a target node with memory
// copies only, classifies the nodes, and optionally saves the model as JSON
// for schedulers to load.
//
// Usage:
//
//	iomodel [-machine profile] [-target node] [-mode write|read|both]
//	        [-threads n] [-repeats n] [-parallelism n] [-o model.json]
//	        [-chaos plan] [-chaos-seed n] [-trace trace.json] [-stage-report]
//
// With -trace the whole run is recorded as Chrome trace-event JSON — one
// span per characterization sweep and per (node, repeat) measurement cell,
// plus fluid solver phases — loadable in chrome://tracing or Perfetto.
// -stage-report prints a per-stage time breakdown instead of (or along
// with) saving the trace. See docs/OBSERVABILITY.md.
//
// With -chaos the sweep runs under a named fault plan (or a JSON plan
// file; see internal/faults) with the resilience machinery on: degraded
// links, flaky devices, and measurements that fail, hang or report
// outliers. The model table then carries a resilience summary. Same seed,
// same model — chaos runs are as deterministic as clean ones.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"numaio/internal/cli"
	"numaio/internal/core"
	"numaio/internal/faults"
	"numaio/internal/numa"
	"numaio/internal/report"
	"numaio/internal/resilience"
	"numaio/internal/topology"
)

func main() {
	os.Exit(cli.Main("iomodel", run(os.Args[1:], os.Stdout)))
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("iomodel", flag.ContinueOnError)
	machine := fs.String("machine", "dl585g7", "machine profile")
	target := fs.Int("target", 7, "node the I/O device is attached to")
	mode := fs.String("mode", "both", "write, read, or both")
	threads := fs.Int("threads", 0, "copy threads (0 = one per target core)")
	repeats := fs.Int("repeats", 0, "repetitions per node (0 = default)")
	all := fs.Bool("all", false, "characterize every node as a target (whole-host model)")
	gap := fs.Float64("gap", 0, "classification gap threshold in (0,1); 0 = default 0.2")
	parallelism := fs.Int("parallelism", 0, "measurement worker-pool width (0 = serial; results are identical at any setting)")
	chaos := fs.String("chaos", "", "run under a fault plan: "+strings.Join(faults.PlanNames(), ", ")+", or a JSON plan file")
	chaosSeed := fs.Uint64("chaos-seed", 0, "override the fault plan's seed (0 keeps the plan's own)")
	outPath := fs.String("o", "", "write the model(s) as JSON to this file")
	trace := cli.NewTraceFlags(fs)
	if err := cli.Parse(fs, args); err != nil {
		return err
	}
	if *chaosSeed != 0 && *chaos == "" {
		return cli.Usagef("-chaos-seed needs -chaos")
	}

	m, err := cli.Machine(*machine)
	if err != nil {
		return err
	}
	sys, err := numa.NewSystem(m)
	if err != nil {
		return err
	}
	cfg := core.Config{
		Threads: *threads, Repeats: *repeats, GapThreshold: *gap,
		Parallelism: *parallelism, Tracer: trace.Tracer(),
	}
	if *chaos != "" {
		plan, err := faults.Load(*chaos)
		if err != nil {
			return err
		}
		if *chaosSeed != 0 {
			plan.Seed = *chaosSeed
		}
		cfg.Faults = &plan
		// Double the default retry budget so every shipped plan's full
		// sweep converges, and let induced hangs cost no wall time.
		cfg.MaxRetries = 10
		cfg.Clock = resilience.NewAutoClock(time.Unix(0, 0))
	}
	c, err := core.NewCharacterizer(sys, cfg)
	if err != nil {
		return err
	}

	if *all {
		mm, err := c.CharacterizeAll()
		if err != nil {
			return err
		}
		t := report.NewTable(
			fmt.Sprintf("whole-host I/O model of %s", m.Name),
			"target", "mode", "classes", "class sets")
		for _, model := range mm.Models {
			sets := ""
			for i, cls := range model.Classes {
				if i > 0 {
					sets += " | "
				}
				sets += fmt.Sprintf("%v", cls.Nodes)
			}
			t.AddRow(fmt.Sprintf("%d", int(model.Target)), model.Mode.String(),
				fmt.Sprintf("%d", model.NumClasses()), sets)
		}
		if _, err := fmt.Fprint(out, t.Render()); err != nil {
			return err
		}
		fmt.Fprintf(out, "whole-host cost reduction: %.0f%%\n", mm.CostReduction()*100)
		if *chaos != "" {
			var sum core.ResilienceReport
			for _, model := range mm.Models {
				if r := model.Resilience; r != nil {
					sum.Retries += r.Retries
					sum.Timeouts += r.Timeouts
					sum.Failures += r.Failures
					sum.Outliers += r.Outliers
				}
			}
			printResilience(out, cfg.Faults, &sum)
		}
		if err := trace.Finish(out); err != nil {
			return err
		}
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				return err
			}
			defer f.Close()
			return mm.SaveJSON(f)
		}
		return nil
	}

	var modes []core.Mode
	switch *mode {
	case "write":
		modes = []core.Mode{core.ModeWrite}
	case "read":
		modes = []core.Mode{core.ModeRead}
	case "both":
		modes = []core.Mode{core.ModeWrite, core.ModeRead}
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	var jsonOut io.WriteCloser
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		jsonOut = f
	}

	for _, md := range modes {
		model, err := c.Characterize(topology.NodeID(*target), md)
		if err != nil {
			return err
		}
		t := report.NewTable(
			fmt.Sprintf("I/O device %s model of node %d on %s", md, *target, m.Name),
			"node", "bandwidth (Gb/s)", "class")
		for _, s := range model.Samples {
			cls, err := model.ClassOf(s.Node)
			if err != nil {
				return err
			}
			t.AddRow(fmt.Sprintf("%d", int(s.Node)), report.Gbps2(s.Bandwidth),
				fmt.Sprintf("%d", cls.Rank))
		}
		if _, err := fmt.Fprint(out, t.Render()); err != nil {
			return err
		}
		fmt.Fprintf(out, "representatives: %v; cost reduction %.0f%%\n",
			model.RepresentativeNodes(), model.CostReduction()*100)
		if model.Resilience != nil {
			printResilience(out, cfg.Faults, model.Resilience)
		}
		fmt.Fprintln(out)
		if jsonOut != nil {
			if err := model.SaveJSON(jsonOut); err != nil {
				return err
			}
		}
	}
	return trace.Finish(out)
}

// printResilience summarizes the faults a chaos sweep absorbed.
func printResilience(out io.Writer, plan *faults.Plan, r *core.ResilienceReport) {
	fmt.Fprintf(out, "chaos plan %q (seed %d): %d retries (%d timeouts, %d failures), %d outliers rejected\n",
		plan.Name, plan.Seed, r.Retries, r.Timeouts, r.Failures, r.Outliers)
}
