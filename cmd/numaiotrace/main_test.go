package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"numaio/internal/cli"
	"numaio/internal/telemetry"
)

// writeDump writes a synthetic Chrome trace dump with a wall-clock anchor.
func writeDump(t *testing.T, dir, file, epochNanos string, events string) string {
	t.Helper()
	doc := `{"displayTimeUnit":"ms",`
	if epochNanos != "" {
		doc += `"epochNanos":"` + epochNanos + `",`
	}
	doc += `"traceEvents":[` + events + `]}`
	path := filepath.Join(dir, file)
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

type mergedDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Ts   float64        `json:"ts"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func runMerge(t *testing.T, args []string) (mergedDoc, []byte) {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	var doc mergedDoc
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("merged output is not valid JSON: %v\n%s", err, out.String())
	}
	return doc, out.Bytes()
}

// TestMergeAlignsEpochs: two dumps whose anchors are 2s apart land on one
// timeline — the later file's timestamps shift by 2e6 µs — with each
// file's events on its own pid lane behind a process_name label.
func TestMergeAlignsEpochs(t *testing.T) {
	dir := t.TempDir()
	a := writeDump(t, dir, "a.json", "1700000000000000000",
		`{"name":"req","ph":"X","ts":100,"dur":50,"pid":1,"tid":0}`)
	b := writeDump(t, dir, "b.json", "1700000002000000000",
		`{"name":"serve","ph":"X","ts":10,"dur":20,"pid":1,"tid":0}`)

	doc, _ := runMerge(t, []string{"load=" + a, "replica=" + b})
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	byName := map[string]int{}
	for i, e := range doc.TraceEvents {
		byName[e.Name] = i
	}
	for _, want := range []string{"process_name", "req", "serve"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("merged trace lacks %q:\n%+v", want, doc.TraceEvents)
		}
	}
	req := doc.TraceEvents[byName["req"]]
	serve := doc.TraceEvents[byName["serve"]]
	if req.Pid == serve.Pid {
		t.Errorf("both processes merged onto pid %d", req.Pid)
	}
	if req.Ts != 100 {
		t.Errorf("earliest-anchor file shifted: ts = %v, want 100", req.Ts)
	}
	if want := 10 + 2e6; serve.Ts != want {
		t.Errorf("later file's ts = %v, want %v (+2s shift)", serve.Ts, want)
	}
	labels := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Name == "process_name" {
			labels[e.Args["name"].(string)] = true
		}
	}
	if !labels["load"] || !labels["replica"] {
		t.Errorf("process_name labels = %v, want load and replica", labels)
	}
}

// TestTraceIDFilter keeps only the events carrying the requested trace_id
// argument, plus the process metadata.
func TestTraceIDFilter(t *testing.T) {
	dir := t.TempDir()
	a := writeDump(t, dir, "a.json", "",
		`{"name":"hit","ph":"X","ts":1,"dur":1,"pid":1,"tid":0,"args":{"trace_id":"abc"}},
		 {"name":"miss","ph":"X","ts":2,"dur":1,"pid":1,"tid":0,"args":{"trace_id":"zzz"}},
		 {"name":"bare","ph":"X","ts":3,"dur":1,"pid":1,"tid":0}`)

	doc, _ := runMerge(t, []string{"-trace-id", "abc", "p=" + a})
	var names []string
	for _, e := range doc.TraceEvents {
		names = append(names, e.Name)
	}
	if len(names) != 2 || names[0] != "process_name" || names[1] != "hit" {
		t.Errorf("filtered events = %v, want [process_name hit]", names)
	}
}

// TestMergeRealTracers merges two dumps produced by live tracers through
// the real export path, checking the epochNanos string anchor round-trips.
func TestMergeRealTracers(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"gw.json", "d.json"} {
		tr := telemetry.NewTracer()
		span := tr.StartSpan("/v1/predict", "http", telemetry.String("trace_id", "deadbeef"))
		span.End()
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.WriteJSON(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	doc, _ := runMerge(t, []string{
		"gw=" + filepath.Join(dir, "gw.json"), "numaiod=" + filepath.Join(dir, "d.json")})
	spans := 0
	for _, e := range doc.TraceEvents {
		if e.Name == "/v1/predict" {
			spans++
			if e.Args["trace_id"] != "deadbeef" {
				t.Errorf("span lost its trace_id: %v", e.Args)
			}
		}
	}
	if spans != 2 {
		t.Errorf("merged %d /v1/predict spans, want 2 (one per process)", spans)
	}
}

// TestMergeDeterministic: same inputs, same bytes.
func TestMergeDeterministic(t *testing.T) {
	dir := t.TempDir()
	a := writeDump(t, dir, "a.json", "1700000000000000000",
		`{"name":"x","ph":"X","ts":5,"dur":1,"pid":1,"tid":0,"args":{"k":"v"}}`)
	b := writeDump(t, dir, "b.json", "1700000001000000000",
		`{"name":"y","ph":"i","ts":5,"pid":1,"tid":0,"s":"t"}`)
	_, first := runMerge(t, []string{"a=" + a, "b=" + b})
	_, second := runMerge(t, []string{"a=" + a, "b=" + b})
	if !bytes.Equal(first, second) {
		t.Error("two merges of the same inputs differ")
	}
}

func TestUsageErrors(t *testing.T) {
	if err := run(nil, io.Discard); cli.ExitCode(err) != 2 {
		t.Errorf("no args: exit %d, want 2", cli.ExitCode(err))
	}
	if err := run([]string{"not-a-pair"}, io.Discard); cli.ExitCode(err) != 2 {
		t.Errorf("malformed arg: exit %d, want 2", cli.ExitCode(err))
	}
	if err := run([]string{"a=/does/not/exist.json"}, io.Discard); err == nil || cli.ExitCode(err) == 2 {
		t.Errorf("missing file should be a runtime error, got %v", err)
	}
}
