// Command numaiotrace stitches per-process Chrome trace dumps — numaioload's
// -trace file, numaiogw's and numaiod's /debug/trace downloads — into one
// fleet timeline loadable by chrome://tracing or https://ui.perfetto.dev.
//
// Usage:
//
//	numaiotrace [-o merged.json] [-trace-id id] name=trace.json [name=trace.json ...]
//
// Each argument names one process's dump; the name becomes the process
// label in the viewer (a process_name metadata event) and the file's
// events keep their relative order on their own pid lane. Dumps recorded
// by live tracers carry an "epochNanos" wall-clock anchor; numaiotrace
// shifts every file's timestamps onto the earliest anchor so spans from
// different processes line up on one absolute timeline. Files without an
// anchor (synthetic or fake-clock dumps) are merged unshifted.
//
// -trace-id keeps only events whose trace_id argument matches — the way to
// carve one request's end-to-end story (load client span, gateway forward,
// replica handling) out of three busy recordings. Metadata events are
// always kept.
//
// Output is a pure function of the inputs: same files in the same order
// yield identical bytes, so merged timelines diff cleanly in CI.
//
// Exit status: 0 on success, 1 when a dump is unreadable or malformed,
// 2 on usage errors.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"numaio/internal/cli"
)

func main() {
	os.Exit(cli.Main("numaiotrace", run(os.Args[1:], os.Stdout)))
}

// traceFile is one loaded per-process dump.
type traceFile struct {
	name   string
	epoch  int64 // unix ns wall-clock anchor; 0 when absent
	events []map[string]any
}

// loadTrace reads one Chrome trace dump. The epochNanos anchor is a JSON
// string (unix nanoseconds exceed float64's integer range); older dumps
// without it load with epoch 0.
func loadTrace(name, path string) (*traceFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		EpochNanos  string           `json:"epochNanos"`
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("%s: not a Chrome trace dump: %v", path, err)
	}
	tf := &traceFile{name: name, events: doc.TraceEvents}
	if doc.EpochNanos != "" {
		tf.epoch, err = strconv.ParseInt(doc.EpochNanos, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: epochNanos %q: %v", path, doc.EpochNanos, err)
		}
	}
	return tf, nil
}

// matchesTraceID reports whether the event carries a trace_id argument
// equal to id.
func matchesTraceID(e map[string]any, id string) bool {
	args, ok := e["args"].(map[string]any)
	if !ok {
		return false
	}
	v, ok := args["trace_id"].(string)
	return ok && v == id
}

// merge rewrites each file's events onto its own pid lane, shifts
// timestamps onto the earliest wall-clock anchor, applies the optional
// trace-id filter, and prepends process_name metadata. Events are ordered
// by shifted timestamp (stable, so same-instant events keep file order).
func merge(files []*traceFile, traceID string) []map[string]any {
	var minEpoch int64
	for _, f := range files {
		if f.epoch != 0 && (minEpoch == 0 || f.epoch < minEpoch) {
			minEpoch = f.epoch
		}
	}
	var meta, events []map[string]any
	for i, f := range files {
		pid := i + 1
		meta = append(meta, map[string]any{
			"name": "process_name", "ph": "M", "pid": pid,
			"args": map[string]any{"name": f.name},
		})
		// Shifts are relative to the earliest anchor, so they stay small
		// (seconds, not a 2026 unix timestamp) and survive the trip
		// through float64 microseconds intact.
		var shift float64
		if f.epoch != 0 && minEpoch != 0 {
			shift = float64(f.epoch-minEpoch) / 1e3
		}
		for _, e := range f.events {
			if traceID != "" && !matchesTraceID(e, traceID) {
				continue
			}
			e["pid"] = pid
			if ts, ok := e["ts"].(float64); ok {
				e["ts"] = ts + shift
			}
			events = append(events, e)
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		ti, _ := events[i]["ts"].(float64)
		tj, _ := events[j]["ts"].(float64)
		return ti < tj
	})
	return append(meta, events...)
}

// writeTrace renders the merged document in the tracer's own style: args
// maps marshal with sorted keys, so output bytes are a pure function of
// the merged events.
func writeTrace(w io.Writer, events []map[string]any) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	for i, e := range events {
		if i > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		b, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("encoding merged event: %w", err)
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("numaiotrace", flag.ContinueOnError)
	output := fs.String("o", "", "write the merged trace to this file (default stdout)")
	traceID := fs.String("trace-id", "", "keep only events whose trace_id argument matches")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return cli.Usagef("at least one name=trace.json argument is required")
	}
	var files []*traceFile
	for _, arg := range fs.Args() {
		name, path, ok := strings.Cut(arg, "=")
		if !ok || name == "" || path == "" {
			return cli.Usagef("argument %q is not name=trace.json", arg)
		}
		tf, err := loadTrace(name, path)
		if err != nil {
			return err
		}
		files = append(files, tf)
	}

	merged := merge(files, *traceID)
	if *output == "" {
		return writeTrace(out, merged)
	}
	f, err := os.Create(*output)
	if err != nil {
		return err
	}
	if err := writeTrace(f, merged); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
