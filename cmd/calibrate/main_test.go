package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"numaio/internal/core"
	"numaio/internal/numa"
	"numaio/internal/topology"
	"numaio/internal/units"
)

// writeModels characterizes the testbed and writes both models to a file,
// mirroring `iomodel -mode both -o`.
func writeModels(t *testing.T) string {
	t.Helper()
	sys, err := numa.NewSystem(topology.DL585G7())
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.NewCharacterizer(sys, core.Config{Sigma: -1, Repeats: 1, BytesPerThread: units.GiB})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "models.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, mode := range []core.Mode{core.ModeWrite, core.ModeRead} {
		m, err := c.Characterize(7, mode)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SaveJSON(f); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

func TestCalibratePipeline(t *testing.T) {
	models := writeModels(t)
	fittedPath := filepath.Join(t.TempDir(), "fitted.json")
	var out bytes.Buffer
	if err := run([]string{
		"-models", models, "-machine", "magny-a",
		"-iters", "120", "-tol", "0.03", "-o", fittedPath,
	}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fit:") {
		t.Errorf("output:\n%s", out.String())
	}
	// The fitted machine is loadable and valid.
	f, err := os.Open(fittedPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := topology.DecodeJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != 8 {
		t.Errorf("fitted machine nodes = %d", m.NumNodes())
	}
}

func TestCalibrateStdout(t *testing.T) {
	models := writeModels(t)
	var out bytes.Buffer
	if err := run([]string{"-models", models, "-machine", "dl585g7"}, &out); err != nil {
		t.Fatal(err)
	}
	// Fitting a machine against its own model converges immediately and
	// dumps the machine JSON to stdout.
	s := out.String()
	if !strings.Contains(s, "converged=true") || !strings.Contains(s, `"name": "hp-dl585-g7"`) {
		t.Errorf("output:\n%.400s", s)
	}
}

func TestCalibrateErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("missing -models should fail")
	}
	if err := run([]string{"-models", "/nonexistent.json"}, &out); err == nil {
		t.Error("missing file should fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-models", bad}, &out); err == nil {
		t.Error("malformed models should fail")
	}
	models := writeModels(t)
	if err := run([]string{"-models", models, "-machine", "warp"}, &out); err == nil {
		t.Error("unknown machine should fail")
	}
	if err := run([]string{"-models", models, "-target", "42"}, &out); err == nil {
		t.Error("unknown target should fail")
	}
}
