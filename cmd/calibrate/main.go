// Command calibrate fits a simulated machine to a measured iomodel — the
// bridge from real hardware to this repository's offline tooling:
//
//  1. run the paper's Algorithm 1 on the real host (or `iomodel -o` on a
//     simulated one) to get write+read models;
//  2. calibrate a machine with the vendor wiring against those models;
//  3. feed the fitted machine (as JSON) to every tool via -machine.
//
// Usage:
//
//	calibrate -models node7.json [-machine magny-a] [-target 7] [-o fitted.json]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"numaio/internal/calibrate"
	"numaio/internal/cli"
	"numaio/internal/core"
	"numaio/internal/topology"
)

func main() {
	os.Exit(cli.Main("calibrate", run(os.Args[1:], os.Stdout)))
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("calibrate", flag.ContinueOnError)
	machine := fs.String("machine", "magny-a", "base wiring to fit (profile or .json)")
	target := fs.Int("target", 7, "characterized target node")
	modelsPath := fs.String("models", "", "JSON stream with the write and read models (iomodel -mode both -o)")
	outPath := fs.String("o", "", "write the fitted machine JSON here")
	iters := fs.Int("iters", 0, "maximum fit iterations (0 = default)")
	tol := fs.Float64("tol", 0, "target maximum relative error (0 = default)")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}
	if *modelsPath == "" {
		fs.Usage()
		return cli.Usagef("missing -models")
	}

	f, err := os.Open(*modelsPath)
	if err != nil {
		return err
	}
	models, err := core.LoadModelsJSON(f)
	f.Close()
	if err != nil {
		return err
	}
	var write, read *core.Model
	for _, m := range models {
		switch m.Mode {
		case core.ModeWrite:
			write = m
		case core.ModeRead:
			read = m
		}
	}
	if write == nil || read == nil {
		return fmt.Errorf("models file must contain one write and one read model")
	}

	base, err := cli.Machine(*machine)
	if err != nil {
		return err
	}
	fitted, rep, err := calibrate.Fit(base, topology.NodeID(*target),
		write.Samples, read.Samples,
		calibrate.Options{MaxIterations: *iters, Tolerance: *tol})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "fit: %d iterations, max relative error %.2f%%, converged=%v\n",
		rep.Iterations, rep.MaxRelErr*100, rep.Converged)

	if *outPath != "" {
		of, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer of.Close()
		return fitted.EncodeJSON(of)
	}
	return fitted.EncodeJSON(out)
}
