package main

import (
	"io"
	"testing"

	"numaio/internal/cli"
)

// Exit-code contract (internal/cli): 0 success or -h, 1 runtime failure,
// 2 usage error.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"help", []string{"-h"}, 0},
		{"unknown flag", []string{"-definitely-not-a-flag"}, 2},
		{"missing -models", nil, 2},
		{"unreadable models file", []string{"-models", "/nonexistent/models.json"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, io.Discard)
			if got := cli.ExitCode(err); got != tc.want {
				t.Errorf("args %v: exit code %d (err: %v), want %d", tc.args, got, err, tc.want)
			}
		})
	}
}
