// Command numactl mirrors the subset of the Linux numactl utility the paper
// relies on (Sec. II-B), against a simulated machine: topology inspection
// (--hardware), SLIT distances, and free-memory reporting.
//
// Usage:
//
//	numactl [-machine profile] -hardware
//	numactl [-machine profile] -slit
//	numactl [-machine profile] -factor
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"numaio/internal/cli"
	"numaio/internal/numa"
)

func main() {
	os.Exit(cli.Main("numactl", run(os.Args[1:], os.Stdout)))
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("numactl", flag.ContinueOnError)
	machine := fs.String("machine", "dl585g7", "machine profile (dl585g7, magny-a..d, intel-4s4n, amd-4s8n, amd-8s8n, hp-blade32)")
	hardware := fs.Bool("hardware", false, "show nodes, memory and distances (like numactl --hardware)")
	slit := fs.Bool("slit", false, "show the SLIT distance matrix only")
	factor := fs.Bool("factor", false, "show the machine's NUMA factor (Table I)")
	latency := fs.Bool("latency", false, "show the node-to-node access latency matrix (ns)")
	dot := fs.Bool("dot", false, "emit the machine as a Graphviz digraph")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	m, err := cli.Machine(*machine)
	if err != nil {
		return err
	}
	sys, err := numa.NewSystem(m)
	if err != nil {
		return err
	}

	did := false
	if *hardware {
		fmt.Fprint(out, sys.Hardware())
		did = true
	}
	if *slit {
		matrix, err := m.SLIT()
		if err != nil {
			return err
		}
		for _, row := range matrix {
			for _, d := range row {
				fmt.Fprintf(out, "%4d", d)
			}
			fmt.Fprintln(out)
		}
		did = true
	}
	if *factor {
		f, err := m.NUMAFactor()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s: NUMA factor %.2f\n", m.Name, f)
		did = true
	}
	if *latency {
		ids := m.NodeIDs()
		fmt.Fprint(out, "access latency (ns):\n     ")
		for _, b := range ids {
			fmt.Fprintf(out, "%6d", int(b))
		}
		fmt.Fprintln(out)
		for _, a := range ids {
			fmt.Fprintf(out, "%4d:", int(a))
			for _, b := range ids {
				lat, err := m.AccessLatency(a, b)
				if err != nil {
					return err
				}
				fmt.Fprintf(out, "%6.0f", lat.Seconds()*1e9)
			}
			fmt.Fprintln(out)
		}
		did = true
	}
	if *dot {
		if err := m.EncodeDOT(out); err != nil {
			return err
		}
		did = true
	}
	if !did {
		fs.Usage()
		return cli.Usagef("nothing to do: pass -hardware, -slit, -factor, -latency or -dot")
	}
	return nil
}
