package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"numaio/internal/topology"
)

func TestHardware(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-hardware"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "available: 8 nodes (0-7)") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestSlitAndFactor(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-slit", "-factor", "-machine", "intel-4s4n"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "  10  20  20  20") {
		t.Errorf("SLIT missing:\n%s", s)
	}
	if !strings.Contains(s, "NUMA factor 1.50") {
		t.Errorf("factor missing:\n%s", s)
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-machine", "warp", "-hardware"}, &out); err == nil {
		t.Error("unknown machine should fail")
	}
	if err := run([]string{}, &out); err == nil {
		t.Error("no action should fail")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("unknown flag should fail")
	}
}

func TestLatencyMatrix(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-latency", "-machine", "amd-4s8n"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "access latency (ns):") {
		t.Errorf("output:\n%s", s)
	}
	// Local latency is 100 ns in the calibrated profile.
	if !strings.Contains(s, "100") {
		t.Errorf("local latency missing:\n%s", s)
	}
}

func TestMachineFileLoading(t *testing.T) {
	// Export the testbed and reload it through the -machine flag.
	var export bytes.Buffer
	if err := run([]string{"-hardware"}, &export); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := topology.DL585G7().EncodeJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out bytes.Buffer
	if err := run([]string{"-machine", path, "-hardware"}, &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != export.String() {
		t.Error("machine file should behave like the canned profile")
	}
}

func TestDOTOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dot"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "digraph") {
		t.Errorf("output:\n%s", out.String())
	}
}

// Golden test: the -hardware rendering is part of the CLI contract.
func TestHardwareGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/hardware.golden")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-hardware"}, &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != string(want) {
		t.Errorf("-hardware output changed; update testdata/hardware.golden if intentional.\ngot:\n%s", out.String())
	}
}
