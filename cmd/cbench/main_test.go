package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestCbenchDefault(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"iomodel (proposed)",
		"hop distance",
		"STREAM CPU-centric",
		"measured per-node rates",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestCbenchWriteEngine(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-engine", "rdma_write"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "rdma_write") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestCbenchErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-machine", "warp"}, &out); err == nil {
		t.Error("unknown machine should fail")
	}
	if err := run([]string{"-engine", "warp"}, &out); err == nil {
		t.Error("unknown engine should fail")
	}
	if err := run([]string{"-target", "42"}, &out); err == nil {
		t.Error("unknown target should fail")
	}
}
