// Command cbench is an automatic NUMA characterization comparator in the
// spirit of the Cbench toolkit the paper discusses ([27], Sec. IV-B): it
// builds every candidate performance model of a target node — hop distance,
// the two STREAM-derived models, and the paper's memcpy iomodel — measures
// the actual per-node I/O rates of a chosen engine, and reports each
// model's rank agreement (Spearman's rho) with the measurement.
//
// Usage:
//
//	cbench [-machine profile] [-target node] [-engine rdma_read]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"numaio/internal/cli"
	"numaio/internal/core"
	"numaio/internal/device"
	"numaio/internal/fio"
	"numaio/internal/numa"
	"numaio/internal/report"
	"numaio/internal/stream"
	"numaio/internal/topology"
	"numaio/internal/units"
)

func main() {
	os.Exit(cli.Main("cbench", run(os.Args[1:], os.Stdout)))
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cbench", flag.ContinueOnError)
	machine := fs.String("machine", "dl585g7", "machine profile or .json file")
	target := fs.Int("target", 7, "node the I/O device is attached to")
	engine := fs.String("engine", device.EngineRDMARead, "I/O engine to measure against")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	m, err := cli.Machine(*machine)
	if err != nil {
		return err
	}
	sys, err := numa.NewSystem(m)
	if err != nil {
		return err
	}
	tgt := topology.NodeID(*target)
	spec, err := device.SpecFor(*engine)
	if err != nil {
		return err
	}

	// Candidate models.
	characterizer, err := core.NewCharacterizer(sys, core.Config{})
	if err != nil {
		return err
	}
	mode := core.ModeWrite
	if spec.Direction == device.FromDevice {
		mode = core.ModeRead
	}
	ioModel, err := characterizer.Characterize(tgt, mode)
	if err != nil {
		return err
	}
	hopModel, err := core.HopDistanceModel(m, tgt)
	if err != nil {
		return err
	}
	sr, err := stream.New(sys, stream.Config{})
	if err != nil {
		return err
	}
	mx, err := sr.Matrix()
	if err != nil {
		return err
	}
	cpuModel, err := core.StreamModel(mx, m, tgt, core.CPUCentric, 0.2)
	if err != nil {
		return err
	}
	memModel, err := core.StreamModel(mx, m, tgt, core.MemCentric, 0.2)
	if err != nil {
		return err
	}

	// Ground truth: measured per-node engine rates.
	runner := fio.NewRunner(sys)
	runner.Sigma = 0
	var measured []core.Sample
	for _, n := range m.NodeIDs() {
		rep, err := runner.Run([]fio.Job{{
			Name: fmt.Sprintf("cbench-%d", int(n)), Engine: *engine,
			Node: n, NumJobs: 2, Size: 4 * units.GiB,
		}})
		if err != nil {
			return err
		}
		measured = append(measured, core.Sample{Node: n, Bandwidth: rep.Aggregate})
	}

	t := report.NewTable(
		fmt.Sprintf("cbench: model agreement with measured %s rates (target node %d)", *engine, *target),
		"model", "Spearman rho", "classes")
	for _, entry := range []struct {
		name  string
		model *core.Model
	}{
		{"iomodel (proposed)", ioModel},
		{"hop distance", hopModel},
		{"STREAM CPU-centric", cpuModel},
		{"STREAM memory-centric", memModel},
	} {
		rho, err := core.SpearmanRank(entry.model, measured)
		if err != nil {
			return err
		}
		t.AddRow(entry.name, fmt.Sprintf("%.3f", rho), fmt.Sprintf("%d", entry.model.NumClasses()))
	}
	if _, err := fmt.Fprint(out, t.Render()); err != nil {
		return err
	}

	mt := report.NewTable("measured per-node rates", "node", "Gb/s", "iomodel class")
	for _, s := range measured {
		cls, err := ioModel.ClassOf(s.Node)
		if err != nil {
			return err
		}
		mt.AddRow(fmt.Sprintf("%d", int(s.Node)), report.Gbps2(s.Bandwidth),
			fmt.Sprintf("%d", cls.Rank))
	}
	_, err = fmt.Fprint(out, mt.Render())
	return err
}
