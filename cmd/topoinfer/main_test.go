package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestStreamSourceInconclusive(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "inconclusive") {
		t.Errorf("measured data should be inconclusive:\n%s", s)
	}
	if !strings.Contains(s, "variant-a") {
		t.Errorf("candidate table missing:\n%s", s)
	}
}

func TestMemcpySource(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-source", "memcpy"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "memcpy matrix") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-source", "ouija"}, &out); err == nil {
		t.Error("unknown source should fail")
	}
	if err := run([]string{"-machine", "warp"}, &out); err == nil {
		t.Error("unknown machine should fail")
	}
	if err := run([]string{"-degree", "0"}, &out); err == nil {
		t.Error("bad degree should fail")
	}
}
