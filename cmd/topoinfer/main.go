// Command topoinfer replays the paper's Sec. IV-A exercise: try to recover
// the machine's interconnect wiring from a measured STREAM bandwidth matrix
// and score the result against the published Fig. 1 variants. On real
// measurements no variant matches — the demonstration that bandwidth does
// not encode physical distance.
//
// Usage:
//
//	topoinfer [-machine profile] [-degree 4] [-source stream|memcpy]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"numaio/internal/cli"
	"numaio/internal/device"
	"numaio/internal/fio"
	"numaio/internal/numa"
	"numaio/internal/report"
	"numaio/internal/stream"
	"numaio/internal/topoinfer"
	"numaio/internal/units"
)

func main() {
	os.Exit(cli.Main("topoinfer", run(os.Args[1:], os.Stdout)))
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("topoinfer", flag.ContinueOnError)
	machine := fs.String("machine", "dl585g7", "machine profile or .json file")
	degree := fs.Int("degree", 4, "assumed links per node")
	source := fs.String("source", "stream", "bandwidth matrix source: stream or memcpy")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	m, err := cli.Machine(*machine)
	if err != nil {
		return err
	}
	sys, err := numa.NewSystem(m)
	if err != nil {
		return err
	}

	var mx topoinfer.Matrix
	switch *source {
	case "stream":
		r, err := stream.New(sys, stream.Config{})
		if err != nil {
			return err
		}
		smx, err := r.Matrix()
		if err != nil {
			return err
		}
		mx = topoinfer.Matrix{Nodes: smx.Nodes, BW: smx.BW}
	case "memcpy":
		runner := fio.NewRunner(sys)
		mx.Nodes = m.NodeIDs()
		for _, src := range mx.Nodes {
			var row []units.Bandwidth
			for _, dst := range mx.Nodes {
				s, d := src, dst
				rep, err := runner.Run([]fio.Job{{
					Name: fmt.Sprintf("ti-%d-%d", int(src), int(dst)), Engine: device.EngineMemcpy,
					Node: dst, NumJobs: 4, Size: 2 * units.GiB, SrcNode: &s, DstNode: &d,
				}})
				if err != nil {
					return err
				}
				row = append(row, rep.Aggregate)
			}
			mx.BW = append(mx.BW, row)
		}
	default:
		return fmt.Errorf("unknown source %q (want stream or memcpy)", *source)
	}

	edges, err := topoinfer.InferAdjacency(&mx, *degree)
	if err != nil {
		return err
	}
	truth := topoinfer.TrueAdjacency(m)
	fmt.Fprintf(out, "inferred %d edges from the %s matrix; %.0f%% match this machine's real wiring\n\n",
		len(edges), *source, topoinfer.Score(edges, truth)*100)

	matches, err := topoinfer.MatchVariants(&mx, *degree)
	if err != nil {
		return err
	}
	t := report.NewTable("candidate Fig. 1 wirings", "variant", "Jaccard score")
	for _, mt := range matches {
		t.AddRow(mt.Variant.String(), fmt.Sprintf("%.2f", mt.Score))
	}
	if _, err := fmt.Fprint(out, t.Render()); err != nil {
		return err
	}
	if topoinfer.Conclusive(matches) {
		fmt.Fprintln(out, "verdict: conclusive match")
	} else {
		fmt.Fprintln(out, "verdict: inconclusive — bandwidth does not encode the wiring (Sec. IV-A)")
	}
	return nil
}
