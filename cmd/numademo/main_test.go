package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestIOModelModule(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"iomodel"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"device write model of node 7",
		"device read model of node 7",
		"2,3",
		"cost reduction: 50%",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("iomodel output missing %q:\n%s", want, s)
		}
	}
}

func TestMemcpyModule(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"memcpy"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "memcpy bandwidth matrix") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestStreamModule(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"stream"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "STREAM Copy bandwidth matrix") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestPoliciesModule(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"policies"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "affinity policies") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("missing module should fail")
	}
	if err := run([]string{"warp"}, &out); err == nil {
		t.Error("unknown module should fail")
	}
	if err := run([]string{"-machine", "warp", "memcpy"}, &out); err == nil {
		t.Error("unknown machine should fail")
	}
	if err := run([]string{"-target", "42", "iomodel"}, &out); err == nil {
		t.Error("unknown target should fail")
	}
}

func TestMemsetModule(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"memset"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "memset bandwidth matrix") {
		t.Errorf("output:\n%s", out.String())
	}
}
