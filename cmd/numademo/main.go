// Command numademo mirrors the numademo benchmark (Sec. II-B) on the
// simulated host, extended — exactly as the paper does (Sec. V-B) — with the
// iomodel test module implementing Algorithm 1.
//
// Modules:
//
//	memcpy   copy bandwidth between every node pair (DMA semantics)
//	memset   write-only bandwidth matrix (the numademo memset module)
//	stream   STREAM Copy matrix (PIO semantics, Fig. 3)
//	policies STREAM under local / remote / interleave affinity policies
//	iomodel  the proposed I/O model of a target node (Fig. 10, Tables IV/V)
//
// Usage:
//
//	numademo [-machine profile] [-target node] <module>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"numaio/internal/cli"
	"numaio/internal/core"
	"numaio/internal/device"
	"numaio/internal/fio"
	"numaio/internal/numa"
	"numaio/internal/report"
	"numaio/internal/stream"
	"numaio/internal/topology"
	"numaio/internal/units"
)

func main() {
	os.Exit(cli.Main("numademo", run(os.Args[1:], os.Stdout)))
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("numademo", flag.ContinueOnError)
	machine := fs.String("machine", "dl585g7", "machine profile")
	target := fs.Int("target", 7, "target node for the iomodel module")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return cli.Usagef("usage: numademo [flags] <memcpy|memset|stream|policies|iomodel>")
	}

	m, err := cli.Machine(*machine)
	if err != nil {
		return err
	}
	sys, err := numa.NewSystem(m)
	if err != nil {
		return err
	}

	switch fs.Arg(0) {
	case "memcpy":
		return demoMemcpy(sys, out)
	case "memset":
		return demoMemset(sys, out)
	case "stream":
		return demoStream(sys, out)
	case "policies":
		return demoPolicies(sys, out)
	case "iomodel":
		return demoIOModel(sys, topology.NodeID(*target), out)
	default:
		return fmt.Errorf("unknown module %q", fs.Arg(0))
	}
}

// demoMemset prints the write-only (memset) bandwidth matrix.
func demoMemset(sys *numa.System, out io.Writer) error {
	r, err := stream.New(sys, stream.Config{Kernel: stream.Fill})
	if err != nil {
		return err
	}
	mx, err := r.Matrix()
	if err != nil {
		return err
	}
	headers := []string{"CPU\\MEM"}
	for _, n := range mx.Nodes {
		headers = append(headers, fmt.Sprintf("%d", int(n)))
	}
	t := report.NewTable("memset bandwidth matrix (Gb/s)", headers...)
	for i, cpu := range mx.Nodes {
		row := []string{fmt.Sprintf("%d", int(cpu))}
		for j := range mx.Nodes {
			row = append(row, report.Gbps2(mx.BW[i][j]))
		}
		t.AddRow(row...)
	}
	_, err = fmt.Fprint(out, t.Render())
	return err
}

// demoPolicies compares the numademo affinity policies (local, remote,
// interleave) per CPU node.
func demoPolicies(sys *numa.System, out io.Writer) error {
	r, err := stream.New(sys, stream.Config{})
	if err != nil {
		return err
	}
	t := report.NewTable("STREAM Copy under affinity policies (Gb/s)",
		"CPU node", "local", "best remote", "worst remote", "interleave")
	for _, cpu := range sys.Machine().NodeIDs() {
		cmp, err := r.ComparePolicies(cpu)
		if err != nil {
			return err
		}
		t.AddRow(fmt.Sprintf("%d", int(cpu)),
			report.Gbps2(cmp.Local), report.Gbps2(cmp.BestRemote),
			report.Gbps2(cmp.WorstRemote), report.Gbps2(cmp.Interleaved))
	}
	_, err = fmt.Fprint(out, t.Render())
	return err
}

// demoMemcpy prints the node-pair copy bandwidth matrix with DMA semantics.
func demoMemcpy(sys *numa.System, out io.Writer) error {
	runner := fio.NewRunner(sys)
	ids := sys.Machine().NodeIDs()
	headers := []string{"SRC\\DST"}
	for _, n := range ids {
		headers = append(headers, fmt.Sprintf("%d", int(n)))
	}
	t := report.NewTable("memcpy bandwidth matrix (4 threads, Gb/s)", headers...)
	for _, src := range ids {
		row := []string{fmt.Sprintf("%d", int(src))}
		for _, dst := range ids {
			s, d := src, dst
			rep, err := runner.Run([]fio.Job{{
				Name: fmt.Sprintf("demo-%d-%d", int(src), int(dst)), Engine: device.EngineMemcpy,
				Node: dst, NumJobs: 4, Size: 2 * units.GiB, SrcNode: &s, DstNode: &d,
			}})
			if err != nil {
				return err
			}
			row = append(row, report.Gbps2(rep.Aggregate))
		}
		t.AddRow(row...)
	}
	_, err := fmt.Fprint(out, t.Render())
	return err
}

// demoStream prints the STREAM Copy matrix (Fig. 3).
func demoStream(sys *numa.System, out io.Writer) error {
	r, err := stream.New(sys, stream.Config{})
	if err != nil {
		return err
	}
	mx, err := r.Matrix()
	if err != nil {
		return err
	}
	headers := []string{"CPU\\MEM"}
	for _, n := range mx.Nodes {
		headers = append(headers, fmt.Sprintf("%d", int(n)))
	}
	t := report.NewTable("STREAM Copy bandwidth matrix (Gb/s)", headers...)
	for i, cpu := range mx.Nodes {
		row := []string{fmt.Sprintf("%d", int(cpu))}
		for j := range mx.Nodes {
			row = append(row, report.Gbps2(mx.BW[i][j]))
		}
		t.AddRow(row...)
	}
	_, err = fmt.Fprint(out, t.Render())
	return err
}

// demoIOModel runs Algorithm 1 in both directions and prints the classified
// models.
func demoIOModel(sys *numa.System, target topology.NodeID, out io.Writer) error {
	c, err := core.NewCharacterizer(sys, core.Config{})
	if err != nil {
		return err
	}
	for _, mode := range []core.Mode{core.ModeWrite, core.ModeRead} {
		model, err := c.Characterize(target, mode)
		if err != nil {
			return err
		}
		t := report.NewTable(
			fmt.Sprintf("iomodel: device %s model of node %d", mode, int(target)),
			"class", "nodes", "range (Gb/s)", "avg (Gb/s)")
		for _, cls := range model.Classes {
			nodes := ""
			for i, n := range cls.Nodes {
				if i > 0 {
					nodes += ","
				}
				nodes += fmt.Sprintf("%d", int(n))
			}
			t.AddRow(fmt.Sprintf("%d", cls.Rank), nodes,
				report.Range(cls.Min, cls.Max), report.Gbps(cls.Avg))
		}
		if _, err := fmt.Fprint(out, t.Render()); err != nil {
			return err
		}
		chart := report.BarChart{Width: 40}
		for _, smp := range model.Samples {
			chart.Add(fmt.Sprintf("node%d", int(smp.Node)), smp.Bandwidth)
		}
		rendered, err := chart.Render()
		if err != nil {
			return err
		}
		if _, err := fmt.Fprint(out, rendered); err != nil {
			return err
		}
		fmt.Fprintf(out, "cost reduction: %.0f%% (test %d of %d nodes)\n\n",
			model.CostReduction()*100, model.NumClasses(), len(model.Samples))
	}
	return nil
}
