// Command whatif re-characterizes a machine after hypothetical hardware
// changes — the cheap re-modelling workflow the memcpy methodology enables
// (no I/O benchmarks needed). Links can be degraded or upgraded; the tool
// prints the before/after models of the target node and every node whose
// class changed.
//
// Usage:
//
//	whatif [-machine profile] [-target node] -degrade node0:node7:0.35 [-degrade ...]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"numaio/internal/cli"
	"numaio/internal/core"
	"numaio/internal/numa"
	"numaio/internal/report"
	"numaio/internal/topology"
)

// degradeFlag collects repeated -degrade options.
type degradeFlag []string

func (d *degradeFlag) String() string     { return strings.Join(*d, ",") }
func (d *degradeFlag) Set(v string) error { *d = append(*d, v); return nil }

func main() {
	os.Exit(cli.Main("whatif", run(os.Args[1:], os.Stdout)))
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("whatif", flag.ContinueOnError)
	machine := fs.String("machine", "dl585g7", "machine profile or .json file")
	target := fs.Int("target", 7, "node the I/O device is attached to")
	var degrades degradeFlag
	fs.Var(&degrades, "degrade", "vertexA:vertexB:factor — scale both directions of a link (repeatable)")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}
	if len(degrades) == 0 {
		fs.Usage()
		return cli.Usagef("nothing to do: pass at least one -degrade")
	}

	base, err := cli.Machine(*machine)
	if err != nil {
		return err
	}
	mutant := base.Clone()
	for _, d := range degrades {
		parts := strings.Split(d, ":")
		if len(parts) != 3 {
			return fmt.Errorf("malformed -degrade %q (want a:b:factor)", d)
		}
		factor, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return fmt.Errorf("malformed factor in %q: %v", d, err)
		}
		if err := mutant.DegradeLinkBetween(parts[0], parts[1], factor); err != nil {
			return err
		}
	}

	characterize := func(m *topology.Machine, mode core.Mode) (*core.Model, error) {
		sys, err := numa.NewSystem(m)
		if err != nil {
			return nil, err
		}
		c, err := core.NewCharacterizer(sys, core.Config{})
		if err != nil {
			return nil, err
		}
		return c.Characterize(topology.NodeID(*target), mode)
	}

	for _, mode := range []core.Mode{core.ModeWrite, core.ModeRead} {
		before, err := characterize(base, mode)
		if err != nil {
			return err
		}
		after, err := characterize(mutant, mode)
		if err != nil {
			return err
		}
		diffs, err := core.Diff(before, after)
		if err != nil {
			return err
		}
		t := report.NewTable(
			fmt.Sprintf("what-if: device %s model of node %d", mode, *target),
			"node", "before Gb/s", "after Gb/s", "class before", "class after", "changed")
		for _, d := range diffs {
			changed := ""
			if d.ClassChanged {
				changed = "<-- class change"
			}
			t.AddRow(fmt.Sprintf("%d", int(d.Node)),
				report.Gbps2(d.Before), report.Gbps2(d.After),
				fmt.Sprintf("%d", d.ClassBefore), fmt.Sprintf("%d", d.ClassAfter), changed)
		}
		if _, err := fmt.Fprint(out, t.Render()); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}
