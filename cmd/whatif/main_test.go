package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestDegradeChangesClasses(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-degrade", "node0:node7:0.35"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "class change") {
		t.Errorf("expected a class change for node 0:\n%s", s)
	}
	if !strings.Contains(s, "device write model") || !strings.Contains(s, "device read model") {
		t.Errorf("both models expected:\n%s", s)
	}
}

func TestMultipleDegrades(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-degrade", "node0:node7:0.5",
		"-degrade", "node6:node7:0.5",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "what-if") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("no degrade should fail")
	}
	if err := run([]string{"-degrade", "bogus"}, &out); err == nil {
		t.Error("malformed degrade should fail")
	}
	if err := run([]string{"-degrade", "a:b:x"}, &out); err == nil {
		t.Error("malformed factor should fail")
	}
	if err := run([]string{"-degrade", "node0:node4:0.5"}, &out); err == nil {
		t.Error("missing link should fail")
	}
	if err := run([]string{"-machine", "warp", "-degrade", "node0:node7:0.5"}, &out); err == nil {
		t.Error("unknown machine should fail")
	}
	if err := run([]string{"-target", "42", "-degrade", "node0:node7:0.5"}, &out); err == nil {
		t.Error("unknown target should fail")
	}
}
