// Command fiosim runs fio-style job files against the simulated testbed
// (Sec. III-B2), or against real memory/sockets with the native engines.
//
// Usage:
//
//	fiosim [-machine profile] [-sigma f] job.fio
//	fiosim -native-memcpy -size 256m -bs 256k -threads 4
//	fiosim -native-tcp -size 64m -bs 128k -streams 2
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"numaio/internal/cli"
	"numaio/internal/fio"
	"numaio/internal/numa"
	"numaio/internal/report"
	"numaio/internal/units"
)

func main() {
	os.Exit(cli.Main("fiosim", run(os.Args[1:], os.Stdout)))
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fiosim", flag.ContinueOnError)
	machine := fs.String("machine", "dl585g7", "machine profile")
	sigma := fs.Float64("sigma", 0.015, "reporting jitter (0 disables)")
	trace := fs.Bool("trace", false, "print the phase timeline and saturated resources")
	lat := fs.Bool("lat", false, "print completion-latency percentiles per instance")
	csv := fs.Bool("csv", false, "emit the results table as CSV instead of aligned text")
	engines := fs.Bool("engines", false, "list supported ioengines and exit")
	nativeMemcpy := fs.Bool("native-memcpy", false, "run the native memory-copy engine instead of a job file")
	nativeTCP := fs.Bool("native-tcp", false, "run the native loopback TCP engine instead of a job file")
	size := fs.String("size", "256m", "native engines: bytes per thread/stream")
	bs := fs.String("bs", "128k", "native engines: block size")
	threads := fs.Int("threads", 4, "native memcpy: thread count")
	streams := fs.Int("streams", 2, "native tcp: stream count")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	if *engines {
		for _, e := range fio.Engines() {
			fmt.Fprintln(out, e)
		}
		return nil
	}

	if *nativeMemcpy || *nativeTCP {
		szv, err := units.ParseSize(*size)
		if err != nil {
			return err
		}
		bsv, err := units.ParseSize(*bs)
		if err != nil {
			return err
		}
		if *nativeMemcpy {
			res, err := fio.NativeMemcpy(szv, bsv, *threads)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "native memcpy: %d threads moved %v in %v -> %v\n",
				res.Threads, res.Bytes, res.Elapsed, res.Bandwidth)
		}
		if *nativeTCP {
			res, err := fio.NativeTCP(szv, bsv, *streams)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "native tcp: %d streams moved %v in %v -> %v\n",
				res.Streams, res.Bytes, res.Elapsed, res.Bandwidth)
		}
		return nil
	}

	if fs.NArg() != 1 {
		return cli.Usagef("usage: fiosim [flags] job.fio")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	jobs, err := fio.ParseJobFile(f)
	if err != nil {
		return err
	}

	m, err := cli.Machine(*machine)
	if err != nil {
		return err
	}
	sys, err := numa.NewSystem(m)
	if err != nil {
		return err
	}
	runner := fio.NewRunner(sys)
	runner.Sigma = *sigma
	rep, err := runner.Run(jobs)
	if err != nil {
		return err
	}

	t := report.NewTable("fiosim results", "instance", "cpu node", "buffer node",
		"steady Gb/s", "avg Gb/s", "duration")
	for _, in := range rep.Instances {
		t.AddRow(fmt.Sprintf("%s/%d", in.Job, in.Instance),
			fmt.Sprintf("%d", int(in.Node)),
			fmt.Sprintf("%d", int(in.BufferNode)),
			report.Gbps2(in.Bandwidth),
			report.Gbps2(in.AvgRate),
			in.Duration.String())
	}
	rendered := t.Render()
	if *csv {
		rendered = t.CSV()
	}
	if _, err := fmt.Fprint(out, rendered); err != nil {
		return err
	}
	fmt.Fprintf(out, "aggregate: %v  makespan: %v\n", rep.Aggregate, rep.Makespan)
	if *lat {
		lt := report.NewTable("completion latency (clat)", "instance", "mean", "p50", "p90", "p99")
		for _, in := range rep.Instances {
			lt.AddRow(fmt.Sprintf("%s/%d", in.Job, in.Instance),
				in.Latency.Mean.String(), in.Latency.P50.String(),
				in.Latency.P90.String(), in.Latency.P99.String())
		}
		if _, err := fmt.Fprint(out, lt.Render()); err != nil {
			return err
		}
	}
	if *trace {
		fmt.Fprint(out, rep.Timeline.Summary())
		if hot := rep.Timeline.Bottlenecks(0.999); len(hot) > 0 {
			fmt.Fprintf(out, "saturated resources: %v\n", hot)
		}
	}
	return nil
}
