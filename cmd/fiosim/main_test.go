package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeJobFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "job.fio")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunJobFile(t *testing.T) {
	path := writeJobFile(t, `
[global]
ioengine=rdma_write
size=4g

[writers]
node=2
numjobs=2
`)
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "writers/0") || !strings.Contains(s, "aggregate:") {
		t.Errorf("output:\n%s", s)
	}
	// Class-3 starved rate.
	if !strings.Contains(s, "17.") {
		t.Errorf("expected ~17 Gb/s for node 2 writes:\n%s", s)
	}
}

func TestNativeEngines(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-native-memcpy", "-size", "16m", "-bs", "256k", "-threads", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "native memcpy: 2 threads") {
		t.Errorf("output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-native-tcp", "-size", "4m", "-bs", "64k", "-streams", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "native tcp: 2 streams") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("missing job file should fail")
	}
	if err := run([]string{"/nonexistent.fio"}, &out); err == nil {
		t.Error("unreadable job file should fail")
	}
	bad := writeJobFile(t, "[j]\nbogus\n")
	if err := run([]string{bad}, &out); err == nil {
		t.Error("malformed job file should fail")
	}
	badMachine := writeJobFile(t, "[j]\nioengine=tcp_send\n")
	if err := run([]string{"-machine", "warp", badMachine}, &out); err == nil {
		t.Error("unknown machine should fail")
	}
	if err := run([]string{"-native-memcpy", "-size", "goofy"}, &out); err == nil {
		t.Error("bad native size should fail")
	}
	if err := run([]string{"-native-tcp", "-bs", "goofy"}, &out); err == nil {
		t.Error("bad native block size should fail")
	}
}

func TestLatencyFlag(t *testing.T) {
	path := writeJobFile(t, "[j]\nioengine=rdma_write\nnode=7\nnumjobs=2\nsize=2g\n")
	var out bytes.Buffer
	if err := run([]string{"-lat", "-sigma", "0", path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"completion latency (clat)", "p99"} {
		if !strings.Contains(s, want) {
			t.Errorf("latency output missing %q:\n%s", want, s)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	path := writeJobFile(t, "[j]\nioengine=rdma_write\nnode=7\nsize=2g\n")
	var out bytes.Buffer
	if err := run([]string{"-csv", "-sigma", "0", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "instance,cpu node,buffer node") {
		t.Errorf("CSV header missing:\n%s", out.String())
	}
}

func TestEnginesFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-engines"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"tcp_send", "rdma_read", "ssd_write", "memcpy"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("engines list missing %s:\n%s", want, out.String())
		}
	}
}
