package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"numaio/internal/cli"
)

// Exit-code contract (internal/cli): 0 success or -h, 1 runtime failure,
// 2 usage error.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"help", []string{"-h"}, 0},
		{"unknown flag", []string{"-definitely-not-a-flag"}, 2},
		{"unexpected positional", []string{"positional"}, 2},
		{"bad workers", []string{"-workers", "0"}, 2},
		{"unusable address", []string{"-addr", "256.256.256.256:0"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(context.Background(), tc.args, io.Discard)
			if got := cli.ExitCode(err); got != tc.want {
				t.Errorf("args %v: exit code %d (err: %v), want %d", tc.args, got, err, tc.want)
			}
		})
	}
}

// syncBuffer lets the test read the daemon's stdout while run() writes it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeAndGracefulShutdown boots the daemon on an ephemeral port,
// exercises the API, then cancels the signal context (the SIGTERM path)
// and verifies a clean drain.
func TestServeAndGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-quiet"}, &out)
	}()

	// Wait for the listen banner and extract the base URL.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; output: %q", out.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "listening on "); ok {
				base = strings.TrimSpace(rest)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	body := `{"machine": "intel-4s4n", "config": {"repeats": 1, "sigma": -1}}`
	resp, err = http.Post(base+"/v1/characterize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("characterize = %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := new(bytes.Buffer)
	if _, err := io.Copy(metrics, resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(metrics.String(),
		`numaiod_requests_total{endpoint="/v1/characterize",status="200"} 1`) {
		t.Errorf("metrics missing characterize counter:\n%s", metrics)
	}

	// SIGTERM path: the signal context cancels, run() drains and returns.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down after context cancellation")
	}
	if !strings.Contains(out.String(), "drained") {
		t.Errorf("no drain confirmation in output: %q", out.String())
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("daemon still serving after shutdown")
	}
}
