// Command numaiod is the model-serving daemon: it characterizes machines
// with Algorithm 1 on demand, caches the resulting models by topology
// fingerprint, and serves Eq. 1 predictions, placement decisions and
// what-if diffs over an HTTP JSON API. See docs/SERVICE.md for the API.
//
// Usage:
//
//	numaiod [-addr host:port] [-workers n] [-parallelism n]
//	        [-cache-entries n] [-cache-ttl d] [-resp-cache-entries n]
//	        [-request-timeout d] [-retries n] [-retry-backoff d]
//	        [-breaker-threshold n] [-breaker-cooldown d] [-pprof]
//	        [-flight-events n] [-flight-dump]
//
// The daemon prints "listening on http://ADDR" once the socket is bound
// (use -addr 127.0.0.1:0 for an ephemeral port) and shuts down gracefully
// on SIGINT/SIGTERM, draining in-flight characterization jobs.
//
// An always-on flight recorder keeps the last -flight-events request and
// resilience events (default 4096; negative disables) in a fixed ring,
// served at GET /debug/flightrecorder. -flight-dump additionally writes
// the ring to stderr on request failures and breaker-open transitions
// (rate-limited to one dump per second); SIGQUIT dumps it on demand
// without stopping the daemon. See docs/OBSERVABILITY.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // handlers gated behind the -pprof flag
	"os"
	"os/signal"
	"syscall"
	"time"

	"numaio/internal/cli"
	"numaio/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(cli.Main("numaiod", run(ctx, os.Args[1:], os.Stdout)))
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("numaiod", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	workers := fs.Int("workers", 4, "max concurrent characterizations")
	parallelism := fs.Int("parallelism", 0, "measurement worker-pool width per characterization (0 = same as -workers)")
	cacheEntries := fs.Int("cache-entries", 64, "model cache capacity")
	cacheTTL := fs.Duration("cache-ttl", time.Hour, "model cache entry lifetime (negative disables expiry)")
	respCacheEntries := fs.Int("resp-cache-entries", 1024, "per-endpoint response cache capacity (negative disables)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget for in-flight jobs")
	requestTimeout := fs.Duration("request-timeout", 30*time.Second, "per-request deadline (0 disables; overruns are 504s)")
	retries := fs.Int("retries", 2, "retry budget for a failed characterization")
	retryBackoff := fs.Duration("retry-backoff", 100*time.Millisecond, "base backoff between characterization retries")
	breakerThreshold := fs.Int("breaker-threshold", 5, "consecutive failures that open a model's circuit breaker (0 disables)")
	breakerCooldown := fs.Duration("breaker-cooldown", 30*time.Second, "open-breaker cooldown before a probe is admitted")
	pprof := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flightEvents := fs.Int("flight-events", 0, "flight recorder ring capacity (0 = 4096, negative disables)")
	flightDump := fs.Bool("flight-dump", false, "dump the flight recorder to stderr on failures and breaker opens")
	quiet := fs.Bool("quiet", false, "suppress request logs")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return cli.Usagef("unexpected arguments: %v", fs.Args())
	}
	if *workers < 1 {
		return cli.Usagef("-workers must be at least 1, got %d", *workers)
	}
	if *parallelism < 0 {
		return cli.Usagef("-parallelism must be nonnegative, got %d", *parallelism)
	}
	if *retries < 0 {
		return cli.Usagef("-retries must be nonnegative, got %d", *retries)
	}
	if *breakerThreshold < 0 {
		return cli.Usagef("-breaker-threshold must be nonnegative, got %d", *breakerThreshold)
	}

	logDst := io.Writer(os.Stderr)
	if *quiet {
		logDst = io.Discard
	}
	logger := slog.New(slog.NewTextHandler(logDst, nil))

	var dumpDst io.Writer
	if *flightDump {
		dumpDst = os.Stderr
	}
	svc := service.New(service.Config{
		Workers:            *workers,
		Parallelism:        *parallelism,
		CacheEntries:       *cacheEntries,
		CacheTTL:           *cacheTTL,
		RespCacheEntries:   *respCacheEntries,
		Logger:             logger,
		RequestTimeout:     *requestTimeout,
		Retries:            *retries,
		RetryBackoff:       *retryBackoff,
		BreakerThreshold:   *breakerThreshold,
		BreakerCooldown:    *breakerCooldown,
		FlightRecorderSize: *flightEvents,
		FlightDump:         dumpDst,
	})

	// SIGQUIT dumps the flight recorder to stderr without stopping the
	// daemon — the "what just happened" lever for a wedged process.
	quitc := make(chan os.Signal, 1)
	signal.Notify(quitc, syscall.SIGQUIT)
	defer signal.Stop(quitc)
	go func() {
		for range quitc {
			fmt.Fprintln(os.Stderr, "numaiod flight recorder dump (SIGQUIT):")
			if err := svc.DumpFlightRecorder(os.Stderr); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			fmt.Fprintln(os.Stderr)
		}
	}()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "listening on http://%s\n", ln.Addr())

	handler := svc.Handler()
	if *pprof {
		// The pprof handlers self-register on http.DefaultServeMux via the
		// net/http/pprof import; expose them next to the API.
		mux := http.NewServeMux()
		mux.Handle("/debug/pprof/", http.DefaultServeMux)
		mux.Handle("/", handler)
		handler = mux
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	srv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
		close(errc)
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, finish open requests, then drain
	// async characterization jobs.
	logger.Info("shutting down", "drain_timeout", *drainTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := svc.Drain(shutCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil {
		return err
	}
	fmt.Fprintln(out, "numaiod: drained, bye")
	return nil
}
