package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"numaio/internal/cli"
)

// passingSuite holds by construction on intel-4s4n; brokenSuite pins an
// impossible class count so the grid must go red.
const passingSuite = `{
  "suite": "cli-pass",
  "defaults": {"repeats": 1, "sigma": -1},
  "cases": [
    {
      "name": "a",
      "machine": "intel-4s4n",
      "target": 3,
      "mode": "write",
      "assert": [{"kind": "class-of", "node": 3, "rank": 1}]
    }
  ]
}`

const brokenSuite = `{
  "suite": "cli-broken",
  "defaults": {"repeats": 1, "sigma": -1},
  "cases": [
    {
      "name": "impossible",
      "machine": "intel-4s4n",
      "target": 3,
      "mode": "write",
      "assert": [{"kind": "num-classes", "min": 9, "max": 9}]
    }
  ]
}`

func writeSuite(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// Exit-code contract (internal/cli): 0 success or -h, 1 runtime failure,
// 2 usage error.
func TestExitCodes(t *testing.T) {
	pass := writeSuite(t, "pass.json", passingSuite)
	broken := writeSuite(t, "broken.json", brokenSuite)
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"help", []string{"-h"}, 0},
		{"unknown flag", []string{"-definitely-not-a-flag"}, 2},
		{"no suite", nil, 2},
		{"negative repeats", []string{"-repeats", "-1", "-suite", pass}, 2},
		{"missing suite file", []string{"-suite", "no/such/suite.json"}, 1},
		{"passing suite", []string{"-suite", pass}, 0},
		{"passing suite positional", []string{pass}, 0},
		{"list", []string{"-list", "-suite", pass, "-suite", broken}, 0},
		{"broken assertion", []string{"-suite", broken}, 1},
		{"broken among passing", []string{"-suite", pass, "-suite", broken}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, io.Discard)
			if got := cli.ExitCode(err); got != tc.want {
				t.Errorf("args %v: exit code %d (err: %v), want %d", tc.args, got, err, tc.want)
			}
		})
	}
}

// TestBrokenAssertionShipsJUnit is the acceptance criterion: a red grid
// still writes the JUnit file, with the failing testcase recorded, before
// exiting 1.
func TestBrokenAssertionShipsJUnit(t *testing.T) {
	broken := writeSuite(t, "broken.json", brokenSuite)
	junit := filepath.Join(t.TempDir(), "out.xml")
	err := run([]string{"-suite", broken, "-junit", junit}, io.Discard)
	if got := cli.ExitCode(err); got != 1 {
		t.Fatalf("exit code %d (err: %v), want 1", got, err)
	}
	data, rerr := os.ReadFile(junit)
	if rerr != nil {
		t.Fatalf("JUnit file not written on failure: %v", rerr)
	}
	xml := string(data)
	for _, want := range []string{`failures="1"`, `<failure`, `name="impossible"`, "num-classes"} {
		if !strings.Contains(xml, want) {
			t.Errorf("JUnit output missing %q:\n%s", want, xml)
		}
	}
}

// TestMarkdownSummary: -md writes the GitHub-flavoured summary table.
func TestMarkdownSummary(t *testing.T) {
	pass := writeSuite(t, "pass.json", passingSuite)
	md := filepath.Join(t.TempDir(), "summary.md")
	if err := run([]string{"-suite", pass, "-md", md}, io.Discard); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(md)
	if err != nil {
		t.Fatalf("markdown summary not written: %v", err)
	}
	got := string(data)
	for _, want := range []string{"| suite |", "cli-pass", "1 passed"} {
		if !strings.Contains(got, want) {
			t.Errorf("markdown summary missing %q:\n%s", want, got)
		}
	}
}
