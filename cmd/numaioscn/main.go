// Command numaioscn runs declarative scenario suites: grids of
// (machine × mode × fault plan) characterizations with per-case assertions
// on the resulting bandwidth-class models (internal/scenario). It prints a
// summary table and can emit JUnit XML for CI and a Markdown summary for
// job annotations.
//
// Usage:
//
//	numaioscn -suite suites/shapevalidation.json [-suite more.json ...]
//	          [-junit out.xml] [-md summary.md] [-parallelism n]
//	          [-repeats n] [-chaos-seed n] [-list]
//	          [-trace trace.json] [-stage-report]
//
// Exit codes follow the repo contract: 0 when every case passes, 1 when
// any case fails or errors (the JUnit file, if requested, is still
// written), 2 on usage errors. -repeats overrides the repeat count of
// cases that do not pin one — the quick-grid knob: PR CI passes a small
// value, the nightly grid runs the suites' full counts. See
// docs/SCENARIOS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"numaio/internal/cli"
	"numaio/internal/report"
	"numaio/internal/scenario"
)

func main() {
	os.Exit(cli.Main("numaioscn", run(os.Args[1:], os.Stdout)))
}

// suitePaths collects a repeatable -suite flag.
type suitePaths []string

func (s *suitePaths) String() string     { return strings.Join(*s, ",") }
func (s *suitePaths) Set(v string) error { *s = append(*s, v); return nil }

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("numaioscn", flag.ContinueOnError)
	var paths suitePaths
	fs.Var(&paths, "suite", "suite file to run (repeatable)")
	junitPath := fs.String("junit", "", "write JUnit XML to this file")
	mdPath := fs.String("md", "", "write a Markdown summary table to this file")
	parallelism := fs.Int("parallelism", 0, "cases measured concurrently (0 = serial; results are identical at any setting)")
	repeats := fs.Int("repeats", 0, "override repeats for cases that do not pin one (0 = suite values)")
	chaosSeed := fs.Uint64("chaos-seed", 0, "override every fault plan's seed (0 keeps the plans' own)")
	list := fs.Bool("list", false, "list the suites' cases without running them")
	trace := cli.NewTraceFlags(fs)
	if err := cli.Parse(fs, args); err != nil {
		return err
	}
	paths = append(paths, fs.Args()...)
	if len(paths) == 0 {
		return cli.Usagef("at least one -suite file is required")
	}
	if *repeats < 0 {
		return cli.Usagef("-repeats must be >= 0")
	}

	suites := make([]*scenario.Suite, 0, len(paths))
	for _, p := range paths {
		s, err := scenario.LoadSuite(p)
		if err != nil {
			return err
		}
		suites = append(suites, s)
	}

	if *list {
		return listCases(out, suites)
	}

	runner := scenario.Runner{
		Parallelism: *parallelism,
		Repeats:     *repeats,
		ChaosSeed:   *chaosSeed,
		Tracer:      trace.Tracer(),
	}
	results := runner.RunAll(suites)

	if _, err := fmt.Fprint(out, scenario.Summarize(results).Render()); err != nil {
		return err
	}
	for _, sr := range results {
		for i := range sr.Cases {
			cr := &sr.Cases[i]
			for _, msg := range cr.Failures {
				fmt.Fprintf(out, "FAIL %s/%s: %s\n", cr.Suite, cr.Case.Name, msg)
			}
			if cr.Err != nil {
				fmt.Fprintf(out, "ERROR %s/%s: %v\n", cr.Suite, cr.Case.Name, cr.Err)
			}
		}
	}

	// The machine-readable outputs are written before the verdict decides
	// the exit code, so a red grid still ships its JUnit evidence to CI.
	if *junitPath != "" {
		if err := writeFile(*junitPath, func(w io.Writer) error {
			return scenario.WriteJUnit(w, results)
		}); err != nil {
			return err
		}
		fmt.Fprintf(out, "junit: written to %s\n", *junitPath)
	}
	if *mdPath != "" {
		if err := writeFile(*mdPath, func(w io.Writer) error {
			_, err := io.WriteString(w, scenario.Summarize(results).Markdown())
			return err
		}); err != nil {
			return err
		}
	}
	if err := trace.Finish(out); err != nil {
		return err
	}

	if failed := scenario.FailedCases(results); failed > 0 {
		total := 0
		for _, sr := range results {
			t, _, _ := sr.Totals()
			total += t
		}
		return fmt.Errorf("%d of %d cases failed", failed, total)
	}
	return nil
}

func listCases(out io.Writer, suites []*scenario.Suite) error {
	tbl := report.NewTable("Scenario suites", "suite", "case", "machine", "target", "mode", "faults", "assertions")
	for _, s := range suites {
		for i := range s.Cases {
			c := &s.Cases[i]
			plan := "-"
			if p := c.Plan(); p != nil {
				plan = p.Name
				if plan == "" {
					plan = "(inline)"
				}
			}
			tbl.AddRow(s.Name, c.Name, c.MachineModel().Name,
				fmt.Sprintf("%d", c.Target), c.Mode, plan, fmt.Sprintf("%d", len(c.Assert)))
		}
	}
	_, err := fmt.Fprint(out, tbl.Render())
	return err
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
