package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestIdleCounters(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "numa_hit") || !strings.Contains(s, "1536") {
		t.Errorf("output missing counters or node-0 free memory:\n%s", s)
	}
}

func TestWithJob(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.fio")
	job := "[j]\nioengine=rdma_write\nnode=2\nnumjobs=2\nsize=2g\n"
	if err := os.WriteFile(path, []byte(job), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-job", path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "ran 2 instances") {
		t.Errorf("job summary missing:\n%s", s)
	}
	// The two local-preferred buffers on node 2 must show as hits.
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "2 ") {
			if !strings.Contains(line, "2") {
				t.Errorf("node 2 counters missing hits: %q", line)
			}
		}
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-machine", "warp"}, &out); err == nil {
		t.Error("unknown machine should fail")
	}
	if err := run([]string{"-job", "/nonexistent.fio"}, &out); err == nil {
		t.Error("missing job file should fail")
	}
	path := filepath.Join(t.TempDir(), "bad.fio")
	if err := os.WriteFile(path, []byte("nonsense"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-job", path}, &out); err == nil {
		t.Error("malformed job file should fail")
	}
}
