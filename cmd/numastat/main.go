// Command numastat mirrors the Linux numastat utility (Sec. II-B) on the
// simulated host: it reports per-node allocation counters and free memory.
// With -job it first runs a fio job file so the counters reflect a real
// workload's placement behaviour.
//
// Usage:
//
//	numastat [-machine profile] [-job job.fio]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"numaio/internal/cli"
	"numaio/internal/fio"
	"numaio/internal/numa"
	"numaio/internal/report"
	"numaio/internal/units"
)

func main() {
	os.Exit(cli.Main("numastat", run(os.Args[1:], os.Stdout)))
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("numastat", flag.ContinueOnError)
	machine := fs.String("machine", "dl585g7", "machine profile")
	jobFile := fs.String("job", "", "fio job file to run before reporting")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	m, err := cli.Machine(*machine)
	if err != nil {
		return err
	}
	sys, err := numa.NewSystem(m)
	if err != nil {
		return err
	}

	if *jobFile != "" {
		f, err := os.Open(*jobFile)
		if err != nil {
			return err
		}
		jobs, err := fio.ParseJobFile(f)
		f.Close()
		if err != nil {
			return err
		}
		runner := fio.NewRunner(sys)
		rep, err := runner.Run(jobs)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "ran %d instances, aggregate %v\n\n", len(rep.Instances), rep.Aggregate)
	}

	t := report.NewTable("numastat", "node", "numa_hit", "numa_miss",
		"numa_foreign", "interleave_hit", "local_node", "other_node", "free_mb")
	for _, n := range m.NodeIDs() {
		st := sys.Stats(n)
		t.AddRow(
			fmt.Sprintf("%d", int(n)),
			fmt.Sprintf("%d", st.NumaHit),
			fmt.Sprintf("%d", st.NumaMiss),
			fmt.Sprintf("%d", st.NumaForeign),
			fmt.Sprintf("%d", st.InterleaveHit),
			fmt.Sprintf("%d", st.LocalNode),
			fmt.Sprintf("%d", st.OtherNode),
			fmt.Sprintf("%d", sys.FreeMem(n)/units.MiB),
		)
	}
	_, err = fmt.Fprint(out, t.Render())
	return err
}
