package main

import (
	"bytes"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"numaio/internal/service"
)

// testDaemon boots an in-process numaiod handler to drive.
func testDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	svc := service.New(service.Config{Workers: 2})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestLoadPredict drives the predict endpoint for a fixed request count
// and checks the report: all requests succeed, RPS is positive, and the
// percentiles are ordered.
func TestLoadPredict(t *testing.T) {
	ts := testDaemon(t)
	var out bytes.Buffer
	err := run([]string{
		"-url", ts.URL, "-endpoint", "predict",
		"-machine", "intel-4s4n", "-target", "3", "-mix", "0:0.5,3:0.5",
		"-concurrency", "2", "-requests", "40", "-duration", "0s",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	report := out.String()
	m := regexp.MustCompile(`requests (\d+) errors (\d+) rps ([\d.]+)`).FindStringSubmatch(report)
	if m == nil {
		t.Fatalf("report missing summary line:\n%s", report)
	}
	if m[1] != "40" || m[2] != "0" {
		t.Errorf("requests/errors = %s/%s, want 40/0", m[1], m[2])
	}
	if rps, _ := strconv.ParseFloat(m[3], 64); rps <= 0 {
		t.Errorf("rps = %v, want > 0", rps)
	}
	if !strings.Contains(report, "latency p50") {
		t.Errorf("report missing latency line:\n%s", report)
	}
}

// TestLoadPlace drives the place endpoint.
func TestLoadPlace(t *testing.T) {
	ts := testDaemon(t)
	var out bytes.Buffer
	err := run([]string{
		"-url", ts.URL, "-endpoint", "place",
		"-machine", "intel-4s4n", "-target", "3", "-tasks", "4",
		"-concurrency", "2", "-requests", "20", "-duration", "0s",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "endpoint=/v1/place") {
		t.Errorf("report missing endpoint banner:\n%s", out.String())
	}
}

// TestWarmupRejectsBadShape: a request shape the daemon rejects fails fast
// at warm-up, before any load is generated.
func TestWarmupRejectsBadShape(t *testing.T) {
	ts := testDaemon(t)
	var out bytes.Buffer
	err := run([]string{
		"-url", ts.URL, "-endpoint", "predict",
		"-machine", "intel-4s4n", "-target", "3", "-mode", "sideways",
		"-requests", "10",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "warm-up") {
		t.Errorf("expected warm-up failure, got %v", err)
	}
}

func TestParseMix(t *testing.T) {
	mix, err := parseMix("0:0.25, 2:0.75")
	if err != nil {
		t.Fatal(err)
	}
	if mix["0"] != 0.25 || mix["2"] != 0.75 {
		t.Errorf("mix = %v", mix)
	}
	for _, bad := range []string{"", "0=1", "x:1", "0:huh"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) should fail", bad)
		}
	}
}
