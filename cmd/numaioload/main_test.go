package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"numaio/internal/cli"
	"numaio/internal/service"
)

// testDaemon boots an in-process numaiod handler to drive.
func testDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	svc := service.New(service.Config{Workers: 2})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestLoadPredict drives the predict endpoint for a fixed request count
// and checks the report: all requests succeed, RPS is positive, and the
// percentiles are ordered.
func TestLoadPredict(t *testing.T) {
	ts := testDaemon(t)
	var out bytes.Buffer
	err := run([]string{
		"-url", ts.URL, "-endpoint", "predict",
		"-machine", "intel-4s4n", "-target", "3", "-mix", "0:0.5,3:0.5",
		"-concurrency", "2", "-requests", "40", "-duration", "0s",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	report := out.String()
	m := regexp.MustCompile(`requests (\d+) errors (\d+) rps ([\d.]+)`).FindStringSubmatch(report)
	if m == nil {
		t.Fatalf("report missing summary line:\n%s", report)
	}
	if m[1] != "40" || m[2] != "0" {
		t.Errorf("requests/errors = %s/%s, want 40/0", m[1], m[2])
	}
	if rps, _ := strconv.ParseFloat(m[3], 64); rps <= 0 {
		t.Errorf("rps = %v, want > 0", rps)
	}
	if !strings.Contains(report, "latency p50") {
		t.Errorf("report missing latency line:\n%s", report)
	}
}

// TestLoadPlace drives the place endpoint.
func TestLoadPlace(t *testing.T) {
	ts := testDaemon(t)
	var out bytes.Buffer
	err := run([]string{
		"-url", ts.URL, "-endpoint", "place",
		"-machine", "intel-4s4n", "-target", "3", "-tasks", "4",
		"-concurrency", "2", "-requests", "20", "-duration", "0s",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "endpoint=/v1/place") {
		t.Errorf("report missing endpoint banner:\n%s", out.String())
	}
}

// TestWarmupRejectsBadShape: a request shape the daemon rejects fails fast
// at warm-up, before any load is generated.
func TestWarmupRejectsBadShape(t *testing.T) {
	ts := testDaemon(t)
	var out bytes.Buffer
	err := run([]string{
		"-url", ts.URL, "-endpoint", "predict",
		"-machine", "intel-4s4n", "-target", "3", "-mode", "sideways",
		"-requests", "10",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "warm-up") {
		t.Errorf("expected warm-up failure, got %v", err)
	}
}

func TestParseMix(t *testing.T) {
	mix, err := parseMix("0:0.25, 2:0.75")
	if err != nil {
		t.Fatal(err)
	}
	if mix["0"] != 0.25 || mix["2"] != 0.75 {
		t.Errorf("mix = %v", mix)
	}
	for _, bad := range []string{"", "0=1", "x:1", "0:huh"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) should fail", bad)
		}
	}
}

// TestLoadRoundRobin: with two -addr targets the closed loop alternates
// between them, and both get a warm-up.
func TestLoadRoundRobin(t *testing.T) {
	a, b := testDaemon(t), testDaemon(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", a.URL, "-addr", b.URL + "/",
		"-machine", "intel-4s4n", "-target", "3", "-mix", "0:0.5,3:0.5",
		"-concurrency", "2", "-requests", "40", "-duration", "0s",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "targets=2") {
		t.Errorf("report missing target count:\n%s", out.String())
	}
	// 40 measured + 2 warm-ups, alternating: each daemon sees ~half.
	// Exactness matters — round-robin, not random spray.
	// (Warm-ups go one to each, measured requests alternate from a.)
	// We only assert both served a nontrivial share to stay robust to
	// worker scheduling.
	// Request counts come from each daemon's own metrics.
	countOf := func(ts *httptest.Server) int64 {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		m := regexp.MustCompile(`numaiod_requests_total\{endpoint="/v1/predict",status="200"\} (\d+)`).FindSubmatch(body)
		if m == nil {
			t.Fatalf("no predict counter in metrics:\n%s", body)
		}
		n, _ := strconv.ParseInt(string(m[1]), 10, 64)
		return n
	}
	na, nb := countOf(a), countOf(b)
	if na+nb != 42 {
		t.Errorf("total requests = %d + %d, want 42 (40 measured + 2 warm-ups)", na, nb)
	}
	if na != 21 || nb != 21 {
		t.Errorf("split = %d/%d, want 21/21 round-robin", na, nb)
	}
}

// TestLoadFleetPlace drives a numaiogw-style /v1/fleet/place endpoint (a
// stub here — the real gateway is exercised in cmd/numaiogw tests).
func TestLoadFleetPlace(t *testing.T) {
	var hits atomic.Int64
	gw := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/fleet/place" {
			t.Errorf("fleet-place hit %s", r.URL.Path)
		}
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"host": "r0", "node": 3, "predicted_bps": 1e9}`))
	}))
	defer gw.Close()
	var out bytes.Buffer
	err := run([]string{
		"-addr", gw.URL, "-endpoint", "fleet-place",
		"-machine", "intel-4s4n", "-target", "3", "-tasks", "4",
		"-concurrency", "2", "-requests", "20", "-duration", "0s",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "endpoint=/v1/fleet/place") {
		t.Errorf("report missing endpoint banner:\n%s", out.String())
	}
	if hits.Load() != 21 {
		t.Errorf("gateway stub saw %d requests, want 21", hits.Load())
	}
}

// TestNoTargetIsUsageError: no -addr and no -url is exit code 2.
func TestNoTargetIsUsageError(t *testing.T) {
	err := run([]string{"-requests", "1"}, io.Discard)
	if cli.ExitCode(err) != 2 {
		t.Errorf("no target: exit %d (err %v), want 2", cli.ExitCode(err), err)
	}
}
