// Command numaioload is the serving-path load harness: it drives a running
// numaiod's /v1/predict or /v1/place endpoint — or a numaiogw gateway's
// /v1/fleet/place — at a configurable concurrency and reports RPS plus
// p50/p95/p99 latency from an HDR-style histogram (internal/loadgen). One
// warm-up request runs first against every target so the measured window
// never includes the initial characterization.
//
// Usage:
//
//	numaioload -addr http://host:port [-addr http://host2:port]
//	           [-endpoint predict|place|fleet-place]
//	           [-machine name] [-target n] [-mode write|read]
//	           [-mix "0:0.5,2:0.5"] [-tasks n] [-repeats n] [-sigma s]
//	           [-concurrency n] [-duration d] [-requests n] [-timeout d]
//	           [-hist-dump hist.json] [-trace trace.json] [-stage-report]
//
// -addr may repeat (or take a comma-separated list); requests round-robin
// across the targets, so a fleet of daemons — or several gateways — can be
// driven from one harness. -url remains as a single-target synonym.
//
// Every request carries a generated X-Request-Id and a fresh X-Trace-Ctx,
// so server-side logs, flight recorders, and traces link back to the
// report. Besides end-to-end latency, the report splits each request into
// client-observed stages (connect / ttfb / decode) and names exemplar
// request IDs from the slowest decile — the IDs to grep for in numaiod's
// logs or /debug/flightrecorder when chasing the p99.
//
// -hist-dump writes the raw measured-window latency histogram (bucket
// uppers and counts, nanoseconds) as JSON for offline analysis. -trace
// records one span per measured request as Chrome trace-event JSON;
// -stage-report prints the per-stage breakdown. See docs/OBSERVABILITY.md.
//
// Exit status: 0 on a completed run, 1 when the daemon is unreachable or
// requests fail, 2 on usage errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptrace"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"numaio/internal/cli"
	"numaio/internal/loadgen"
	"numaio/internal/telemetry"
)

func main() {
	os.Exit(cli.Main("numaioload", run(os.Args[1:], os.Stdout)))
}

// parseMix turns "0:0.5,2:0.5" into the predict request's mix object.
func parseMix(s string) (map[string]float64, error) {
	mix := make(map[string]float64)
	for _, part := range strings.Split(s, ",") {
		node, frac, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("mix entry %q is not node:fraction", part)
		}
		if _, err := strconv.Atoi(node); err != nil {
			return nil, fmt.Errorf("mix node %q is not an integer", node)
		}
		f, err := strconv.ParseFloat(frac, 64)
		if err != nil {
			return nil, fmt.Errorf("mix fraction %q: %v", frac, err)
		}
		mix[node] = f
	}
	return mix, nil
}

// stageHists splits each request's latency into the client-observed
// stages: connect (dial or connection-pool checkout), ttfb (request fully
// written to first response byte — the server-side span, roughly), and
// decode (first byte to body fully read). The three histograms are shared
// across workers, so records take a mutex; the lock covers an
// allocation-free histogram insert and is negligible next to an HTTP
// round trip.
type stageHists struct {
	mu      sync.Mutex
	connect *loadgen.Histogram
	ttfb    *loadgen.Histogram
	decode  *loadgen.Histogram
}

func newStageHists() *stageHists {
	return &stageHists{
		connect: loadgen.NewHistogram(),
		ttfb:    loadgen.NewHistogram(),
		decode:  loadgen.NewHistogram(),
	}
}

func (s *stageHists) record(connect, ttfb, decode time.Duration) {
	s.mu.Lock()
	s.connect.Record(connect)
	s.ttfb.Record(ttfb)
	s.decode.Record(decode)
	s.mu.Unlock()
}

func (s *stageHists) reset() {
	s.mu.Lock()
	s.connect = loadgen.NewHistogram()
	s.ttfb = loadgen.NewHistogram()
	s.decode = loadgen.NewHistogram()
	s.mu.Unlock()
}

func (s *stageHists) report(out io.Writer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, row := range []struct {
		name string
		h    *loadgen.Histogram
	}{{"connect", s.connect}, {"ttfb", s.ttfb}, {"decode", s.decode}} {
		if row.h.Count() == 0 {
			continue
		}
		fmt.Fprintf(out, "stage %s p50 %s p95 %s p99 %s\n", row.name,
			row.h.Quantile(0.50).Round(time.Microsecond),
			row.h.Quantile(0.95).Round(time.Microsecond),
			row.h.Quantile(0.99).Round(time.Microsecond))
	}
}

// endpointPath maps the -endpoint kind to its URL path. fleet-place is
// served by the numaiogw gateway, the other two by numaiod (or a gateway
// proxying for one).
func endpointPath(endpoint string) (string, error) {
	switch endpoint {
	case "predict":
		return "/v1/predict", nil
	case "place":
		return "/v1/place", nil
	case "fleet-place":
		return "/v1/fleet/place", nil
	}
	return "", fmt.Errorf("endpoint must be predict, place or fleet-place, got %q", endpoint)
}

// buildBody assembles the request body for the chosen endpoint.
func buildBody(endpoint, machine string, target int, mode string, mix map[string]float64, tasks, repeats int, sigma float64) ([]byte, error) {
	config := map[string]any{"repeats": repeats, "sigma": sigma}
	body := map[string]any{"machine": machine, "config": config, "target": target}
	switch endpoint {
	case "predict":
		body["mode"] = mode
		body["mix"] = mix
	case "place", "fleet-place":
		body["tasks"] = tasks
	default:
		return nil, fmt.Errorf("endpoint must be predict, place or fleet-place, got %q", endpoint)
	}
	return json.Marshal(body)
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("numaioload", flag.ContinueOnError)
	url := fs.String("url", "", "base URL of a running numaiod (single-target synonym for -addr)")
	var addrs []string
	fs.Func("addr", "target base URL; repeat or comma-separate for round-robin across a fleet", func(v string) error {
		for _, a := range strings.Split(v, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, strings.TrimRight(a, "/"))
			}
		}
		return nil
	})
	endpoint := fs.String("endpoint", "predict", "endpoint to drive: predict, place or fleet-place")
	machine := fs.String("machine", "dl585g7", "machine profile the requests name")
	target := fs.Int("target", 7, "target node for predictions/placements")
	mode := fs.String("mode", "write", "prediction mode: write or read")
	mixFlag := fs.String("mix", "0:0.5,2:0.5", "predict traffic mix as node:fraction pairs")
	tasks := fs.Int("tasks", 8, "tasks to place (place endpoint)")
	repeats := fs.Int("repeats", 1, "characterization repeats requested")
	sigma := fs.Float64("sigma", -1, "characterization noise sigma (negative disables)")
	concurrency := fs.Int("concurrency", 4, "closed-loop worker count")
	duration := fs.Duration("duration", 5*time.Second, "run length (ignored when -requests > 0)")
	requests := fs.Int("requests", 0, "total request cap (0 = run for -duration)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
	histDump := fs.String("hist-dump", "", "write the raw latency histogram as JSON to this file")
	trace := cli.NewTraceFlags(fs)
	if err := cli.Parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return cli.Usagef("unexpected arguments: %v", fs.Args())
	}
	if *url != "" {
		addrs = append([]string{strings.TrimRight(*url, "/")}, addrs...)
	}
	if len(addrs) == 0 {
		return cli.Usagef("at least one -addr (or -url) is required")
	}
	if *concurrency < 1 {
		return cli.Usagef("-concurrency must be at least 1, got %d", *concurrency)
	}
	if *requests <= 0 && *duration <= 0 {
		return cli.Usagef("one of -requests or -duration must be positive")
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	body, err := buildBody(*endpoint, *machine, *target, *mode, mix, *tasks, *repeats, *sigma)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	path, err := endpointPath(*endpoint)
	if err != nil {
		return cli.Usagef("%v", err)
	}

	client := &http.Client{Timeout: *timeout}
	stages := newStageHists()
	// Every request carries its generated X-Request-Id and a fresh
	// X-Trace-Ctx, so server-side flight recorders and traces link back to
	// the harness's report (and its slowest-decile exemplars) by ID.
	postTo := func(base, id string, tc telemetry.TraceContext) (int, string, error) {
		req, err := http.NewRequest(http.MethodPost, base+path, bytes.NewReader(body))
		if err != nil {
			return 0, "", err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Request-Id", id)
		req.Header.Set(telemetry.TraceCtxHeader, tc.String())
		var connStart, connDone, wrote, first time.Time
		req = req.WithContext(httptrace.WithClientTrace(req.Context(), &httptrace.ClientTrace{
			GetConn:              func(string) { connStart = time.Now() },
			GotConn:              func(httptrace.GotConnInfo) { connDone = time.Now() },
			WroteRequest:         func(httptrace.WroteRequestInfo) { wrote = time.Now() },
			GotFirstResponseByte: func() { first = time.Now() },
		}))
		resp, err := client.Do(req)
		if err != nil {
			return 0, "", err
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if !connStart.IsZero() && !wrote.IsZero() && !first.IsZero() {
			stages.record(connDone.Sub(connStart), first.Sub(wrote), time.Since(first))
		}
		return resp.StatusCode, string(b), nil
	}
	// Round-robin across the targets so load spreads over a fleet.
	var next atomic.Uint64
	post := func(id string, tc telemetry.TraceContext) (int, string, error) {
		return postTo(addrs[(next.Add(1)-1)%uint64(len(addrs))], id, tc)
	}

	// Warm-up: characterize once per target outside the measured window,
	// and fail fast on an unreachable daemon or a rejected request shape.
	for _, base := range addrs {
		status, respBody, err := postTo(base, "load-warmup", telemetry.NewTraceContext())
		if err != nil {
			return fmt.Errorf("warm-up request to %s: %w", base, err)
		}
		if status != http.StatusOK {
			return fmt.Errorf("warm-up request to %s: %d %s", base, status, strings.TrimSpace(respBody))
		}
	}
	stages.reset() // the warm-ups are not part of the measured window

	tr := trace.Tracer()
	runSpan := tr.StartSpan("load-run", "load")
	res, err := loadgen.Run(loadgen.Config{
		Concurrency: *concurrency,
		Requests:    *requests,
		Duration:    *duration,
		DoTagged: func(id string) error {
			tc := telemetry.NewTraceContext()
			span := tr.StartSpan(path, "request")
			span.SetAttr(telemetry.String("request_id", id))
			span.SetAttr(telemetry.String("trace_id", tc.TraceID))
			st, _, err := post(id, tc)
			span.SetAttr(telemetry.Int("status", st))
			span.End()
			if err != nil {
				return err
			}
			if st != http.StatusOK {
				return fmt.Errorf("status %d", st)
			}
			return nil
		},
	})
	runSpan.End()
	if err != nil {
		return err
	}
	if *histDump != "" {
		f, err := os.Create(*histDump)
		if err != nil {
			return err
		}
		if err := res.Hist.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	fmt.Fprintf(out, "numaioload: endpoint=%s targets=%d machine=%s concurrency=%d duration=%s\n",
		path, len(addrs), *machine, *concurrency, res.Duration.Round(time.Millisecond))
	fmt.Fprintf(out, "requests %d errors %d rps %.1f\n", res.Requests, res.Errors, res.RPS)
	fmt.Fprintf(out, "latency p50 %s p95 %s p99 %s max %s\n",
		res.P50.Round(time.Microsecond), res.P95.Round(time.Microsecond),
		res.P99.Round(time.Microsecond), res.Max.Round(time.Microsecond))
	stages.report(out)
	if n := len(res.SlowExemplars); n > 0 {
		// ExemplarsAbove is fastest-first; name the slowest few.
		ids := make([]string, 0, n)
		for _, ex := range res.SlowExemplars[max(0, n-5):] {
			ids = append(ids, ex.ID)
		}
		fmt.Fprintf(out, "slowest decile exemplars %s\n", strings.Join(ids, " "))
	}
	if err := trace.Finish(out); err != nil {
		return err
	}
	if res.Errors > 0 {
		return fmt.Errorf("%d of %d requests failed", res.Errors, res.Requests)
	}
	return nil
}
