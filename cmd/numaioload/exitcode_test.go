package main

import (
	"io"
	"testing"

	"numaio/internal/cli"
)

// Exit-code contract (internal/cli): 0 success or -h, 1 runtime failure,
// 2 usage error.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"help", []string{"-h"}, 0},
		{"unknown flag", []string{"-definitely-not-a-flag"}, 2},
		{"missing -url", nil, 2},
		{"bad endpoint", []string{"-url", "http://127.0.0.1:1", "-endpoint", "teleport"}, 2},
		{"bad mix", []string{"-url", "http://127.0.0.1:1", "-mix", "zero:half"}, 2},
		{"no caps", []string{"-url", "http://127.0.0.1:1", "-requests", "0", "-duration", "0s"}, 2},
		{"unreachable daemon", []string{"-url", "http://127.0.0.1:1", "-requests", "1"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, io.Discard)
			if got := cli.ExitCode(err); got != tc.want {
				t.Errorf("args %v: exit code %d (err: %v), want %d", tc.args, got, err, tc.want)
			}
		})
	}
}
