package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"numaio/internal/cli"
)

// TestHistDump: -hist-dump writes the raw latency histogram as JSON whose
// bucket counts sum to the request count.
func TestHistDump(t *testing.T) {
	ts := testDaemon(t)
	path := filepath.Join(t.TempDir(), "hist.json")
	var out bytes.Buffer
	err := run([]string{
		"-url", ts.URL, "-endpoint", "predict",
		"-machine", "intel-4s4n", "-target", "3", "-mix", "0:0.5,3:0.5",
		"-concurrency", "2", "-requests", "30", "-duration", "0s",
		"-hist-dump", path,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Count   int64 `json:"count"`
		SumNS   int64 `json:"sum_ns"`
		MaxNS   int64 `json:"max_ns"`
		Buckets []struct {
			UpperNS int64 `json:"upper_ns"`
			Count   int64 `json:"count"`
		} `json:"buckets"`
	}
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, raw)
	}
	if dump.Count != 30 {
		t.Errorf("dump count = %d, want 30", dump.Count)
	}
	var sum int64
	for _, b := range dump.Buckets {
		if b.Count <= 0 {
			t.Errorf("dump contains empty bucket upper_ns=%d", b.UpperNS)
		}
		sum += b.Count
	}
	if sum != dump.Count {
		t.Errorf("bucket counts sum to %d, want %d", sum, dump.Count)
	}
	if dump.MaxNS <= 0 || dump.SumNS < dump.MaxNS {
		t.Errorf("dump sum_ns=%d max_ns=%d inconsistent", dump.SumNS, dump.MaxNS)
	}
}

// TestHistDumpUnwritable: a dump path that cannot be created fails the run
// with exit code 1 (runtime, not usage) — the load itself already ran.
func TestHistDumpUnwritable(t *testing.T) {
	ts := testDaemon(t)
	var out bytes.Buffer
	err := run([]string{
		"-url", ts.URL, "-endpoint", "predict",
		"-machine", "intel-4s4n", "-target", "3", "-mix", "0:0.5,3:0.5",
		"-requests", "2", "-duration", "0s",
		"-hist-dump", filepath.Join(t.TempDir(), "no", "such", "dir", "h.json"),
	}, &out)
	if err == nil {
		t.Fatal("expected error for unwritable hist-dump path")
	}
	if got := cli.ExitCode(err); got != 1 {
		t.Errorf("exit code = %d (err %v), want 1", got, err)
	}
}

// TestTraceRecordsRequests: -trace captures one request span per measured
// request plus the load-run envelope.
func TestTraceRecordsRequests(t *testing.T) {
	ts := testDaemon(t)
	path := filepath.Join(t.TempDir(), "trace.json")
	var out bytes.Buffer
	err := run([]string{
		"-url", ts.URL, "-endpoint", "predict",
		"-machine", "intel-4s4n", "-target", "3", "-mix", "0:0.5,3:0.5",
		"-requests", "10", "-duration", "0s",
		"-trace", path,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var reqs, runs int
	for _, e := range doc.TraceEvents {
		switch e.Cat {
		case "request":
			reqs++
		case "load":
			runs++
		}
	}
	if reqs != 10 {
		t.Errorf("trace has %d request spans, want 10", reqs)
	}
	if runs != 1 {
		t.Errorf("trace has %d load-run spans, want 1", runs)
	}
}
