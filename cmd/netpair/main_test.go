package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestMatrixMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-streams", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "end-to-end TCP, 4 streams") {
		t.Errorf("output:\n%s", s)
	}
	if !strings.Contains(s, "worst-case misplacement penalty:") {
		t.Errorf("penalty missing:\n%s", s)
	}
}

func TestSingleTransferMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-send", "2", "-recv", "6"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "bottleneck: send") {
		t.Errorf("class-3 sender should be the bottleneck:\n%s", s)
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-send", "2"}, &out); err == nil {
		t.Error("missing -recv should fail")
	}
	if err := run([]string{"-machine", "warp"}, &out); err == nil {
		t.Error("unknown machine should fail")
	}
	if err := run([]string{"-send", "42", "-recv", "6"}, &out); err == nil {
		t.Error("unknown node should fail")
	}
}
