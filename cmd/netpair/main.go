// Command netpair drives the full Fig. 2 testbed: two identical hosts
// cabled NIC to NIC. It measures the end-to-end TCP rate for every
// (sender binding × receiver binding) combination and reports the
// worst-case misplacement penalty.
//
// Usage:
//
//	netpair [-machine profile] [-streams 4] [-send node -recv node]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"numaio/internal/cli"
	"numaio/internal/netpair"
	"numaio/internal/report"
	"numaio/internal/topology"
	"numaio/internal/units"
)

func main() {
	os.Exit(cli.Main("netpair", run(os.Args[1:], os.Stdout)))
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("netpair", flag.ContinueOnError)
	machine := fs.String("machine", "dl585g7", "machine profile or .json file")
	streams := fs.Int("streams", 4, "parallel TCP streams")
	send := fs.Int("send", -1, "single-transfer mode: sender binding")
	recv := fs.Int("recv", -1, "single-transfer mode: receiver binding")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	m, err := cli.Machine(*machine)
	if err != nil {
		return err
	}
	pair, err := netpair.New(func() *topology.Machine { return m.Clone() })
	if err != nil {
		return err
	}

	if *send >= 0 || *recv >= 0 {
		if *send < 0 || *recv < 0 {
			return fmt.Errorf("single-transfer mode needs both -send and -recv")
		}
		res, err := pair.Transfer(topology.NodeID(*send), topology.NodeID(*recv), *streams, 0)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "send side %v, receive side %v, wire %v\n",
			res.SendSide, res.RecvSide, res.Wire)
		fmt.Fprintf(out, "end to end: %v (bottleneck: %s)\n", res.EndToEnd, res.Bottlneck)
		return nil
	}

	nodes, bw, err := pair.Matrix(*streams, 2*units.GiB)
	if err != nil {
		return err
	}
	headers := []string{"send\\recv"}
	for _, n := range nodes {
		headers = append(headers, fmt.Sprintf("n%d", int(n)))
	}
	t := report.NewTable(
		fmt.Sprintf("end-to-end TCP, %d streams (Gb/s)", *streams), headers...)
	for i, sn := range nodes {
		row := []string{fmt.Sprintf("n%d", int(sn))}
		for j := range nodes {
			row = append(row, report.Gbps(bw[i][j]))
		}
		t.AddRow(row...)
	}
	if _, err := fmt.Fprint(out, t.Render()); err != nil {
		return err
	}
	fmt.Fprintf(out, "worst-case misplacement penalty: %.0f%%\n", netpair.WorstPenalty(bw)*100)
	return nil
}
