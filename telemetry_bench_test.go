// Telemetry-overhead microbenchmarks: the always-on flight recorder is
// only "always-on" because it is nearly free. BenchmarkRecorderOverhead
// serves the same hot /v1/predict request with the recorder disabled and
// enabled; scripts/bench.sh -check gates the on/off ratio at 5% so the
// observability tax on the serving path stays invisible.
// BenchmarkFlightRecorderRecord pins the recorder's own insert at zero
// allocations — the bounded-memory contract that makes a failure-storm
// dump safe.
package numaio

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"numaio/internal/service"
	"numaio/internal/telemetry"
)

// benchTelemetryHandler builds a warmed daemon with the given flight
// recorder size (negative disables).
func benchTelemetryHandler(b *testing.B, flightSize int) http.Handler {
	b.Helper()
	svc := service.New(service.Config{Workers: 2, FlightRecorderSize: flightSize})
	h := svc.Handler()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(benchPredictBody))
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("warm-up request = %d %s", rec.Code, rec.Body.String())
	}
	return h
}

// BenchmarkRecorderOverhead measures one hot prediction with the flight
// recorder off and on; the delta is the recorder's per-request cost.
func BenchmarkRecorderOverhead(b *testing.B) {
	for _, mode := range []struct {
		name string
		size int
	}{{"off", -1}, {"on", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			h := benchTelemetryHandler(b, mode.size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := httptest.NewRecorder()
				req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(benchPredictBody))
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("predict = %d %s", rec.Code, rec.Body.String())
				}
			}
		})
	}
}

// BenchmarkFlightRecorderRecord measures the recorder's raw insert on a
// full (wrapping) ring — the steady state of a long-lived daemon. The
// bench.sh gate holds it at zero allocations per record.
func BenchmarkFlightRecorderRecord(b *testing.B) {
	fr := telemetry.NewFlightRecorder(4096)
	ev := telemetry.FlightEvent{
		Time:    time.Now().UnixNano(),
		Dur:     3 * time.Millisecond,
		Status:  200,
		Name:    "/v1/predict",
		Cat:     "http",
		RID:     "bench-rid",
		TraceID: "0123456789abcdef0123456789abcdef",
	}
	for i := 0; i < 4096; i++ {
		fr.Record(ev)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr.Record(ev)
	}
}
