// Serving-path microbenchmarks: one hot /v1/predict and /v1/place request
// against a warmed numaiod service (model already characterized and cached).
// scripts/bench.sh records these next to the characterization benchmarks so
// the request-path fast lane (interned solver IDs, response caching, pooled
// encoders) is pinned by the same regression gate.
package numaio

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"numaio/internal/service"
)

// benchHandler builds a daemon handler and warms the model cache with one
// characterization of the reference machine, so the benchmark loop measures
// pure request serving, not Algorithm 1.
func benchHandler(b *testing.B, warm string) http.Handler {
	b.Helper()
	svc := service.New(service.Config{Workers: 2})
	h := svc.Handler()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, warmPath(warm), strings.NewReader(warm))
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("warm-up request = %d %s", rec.Code, rec.Body.String())
	}
	return h
}

// warmPath picks the endpoint matching the warm-up body.
func warmPath(body string) string {
	if strings.Contains(body, `"tasks"`) {
		return "/v1/place"
	}
	return "/v1/predict"
}

const benchPredictBody = `{"machine": "dl585g7", "config": {"repeats": 1, "sigma": -1},
 "target": 7, "mode": "write", "mix": {"0": 0.25, "2": 0.25, "4": 0.25, "7": 0.25}}`

const benchPlaceBody = `{"machine": "dl585g7", "config": {"repeats": 1, "sigma": -1},
 "target": 7, "tasks": 8}`

// BenchmarkPredictRequest measures one hot Eq. 1 prediction request.
func BenchmarkPredictRequest(b *testing.B) {
	h := benchHandler(b, benchPredictBody)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(benchPredictBody))
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("predict = %d %s", rec.Code, rec.Body.String())
		}
	}
}

// BenchmarkPlaceRequest measures one hot placement request (all four
// single-host policies, estimates only).
func BenchmarkPlaceRequest(b *testing.B) {
	h := benchHandler(b, benchPlaceBody)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/place", strings.NewReader(benchPlaceBody))
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("place = %d %s", rec.Code, rec.Body.String())
		}
	}
}
