// Cluster: schedule I/O tasks across several NUMA hosts — the multi-user
// cluster environment the paper's introduction motivates. Each host is
// characterized once with Algorithm 1; the cluster scheduler then splits
// the task set over hosts (pack-first vs spread vs model-greedy) and binds
// tasks to nodes with the per-host class-balanced policy.
package main

import (
	"fmt"
	"log"

	"numaio/internal/cluster"
	"numaio/internal/device"
	"numaio/internal/topology"
	"numaio/internal/units"
)

func main() {
	c, err := cluster.New(topology.DL585G7, 7, "host-a", "host-b", "host-c")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster of %d characterized hosts\n\n", len(c.Hosts))

	const tasks = 9
	for _, policy := range []cluster.Policy{cluster.PackFirst, cluster.SpreadEven, cluster.ModelGreedy} {
		assignments, err := c.Place(device.EngineRDMAWrite, tasks, policy)
		if err != nil {
			log.Fatal(err)
		}
		eval, err := c.Evaluate(device.EngineRDMAWrite, assignments, 4*units.GiB)
		if err != nil {
			log.Fatal(err)
		}
		counts := map[string]int{}
		for _, a := range assignments {
			counts[a.Host]++
		}
		fmt.Printf("%-13s aggregate %6.1f Gb/s  tasks per host %v\n",
			policy.String(), eval.Aggregate.Gbps(), counts)
	}
	fmt.Println("\npacking everything onto one adapter wastes the other hosts' NICs;")
	fmt.Println("the model-driven split saturates all of them.")
}
