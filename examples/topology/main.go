// Topology: explore the four published 4P Magny-Cours wirings of Fig. 1 and
// demonstrate the paper's first claim — hop distance does not predict
// measured bandwidth. For each variant the program prints node 7's hop
// distances; for the calibrated testbed it contrasts the hop ordering with
// the measured memcpy ordering.
package main

import (
	"fmt"
	"log"
	"sort"

	"numaio/internal/core"
	"numaio/internal/numa"
	"numaio/internal/topology"
)

func main() {
	for _, v := range []topology.MagnyVariant{
		topology.VariantA, topology.VariantB, topology.VariantC, topology.VariantD,
	} {
		m := topology.MagnyCours4P(v)
		fmt.Printf("%s: node 7 hop distances:", m.Name)
		for _, n := range m.NodeIDs() {
			h, err := m.HopDistance(7, n)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %d:%d", int(n), h)
		}
		f, err := m.NUMAFactor()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  (NUMA factor %.2f)\n", f)
	}

	// The testbed: hop ordering vs measured memcpy ordering into node 7.
	m := topology.DL585G7()
	sys, err := numa.NewSystem(m)
	if err != nil {
		log.Fatal(err)
	}
	characterizer, err := core.NewCharacterizer(sys, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	model, err := characterizer.Characterize(7, core.ModeWrite)
	if err != nil {
		log.Fatal(err)
	}

	type row struct {
		node topology.NodeID
		hops int
		bw   float64
	}
	var rows []row
	for _, s := range model.Samples {
		h, err := m.HopDistance(s.Node, 7)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{s.Node, h, s.Bandwidth.Gbps()})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].bw > rows[j].bw })

	fmt.Println("\nhp-dl585-g7: write-model bandwidth into node 7, best to worst:")
	fmt.Println("  node  hops  memcpy Gb/s")
	for _, r := range rows {
		fmt.Printf("  %4d  %4d  %10.2f\n", int(r.node), r.hops, r.bw)
	}
	fmt.Println("note: nodes 2 (1 hop) and 3 (2 hops) share the worst class while")
	fmt.Println("node 1 (2 hops) sits in the middle class — hop distance is not the cost.")
}
