// Multiuser: validate the paper's Eq. 1 bandwidth mixture model. A shared
// RDMA-capable NIC serves readers bound to different NUMA nodes; the model,
// calibrated with one run per performance class, predicts the aggregate of
// arbitrary mixes — the paper's Sec. V-B example generalized to several
// process mixes.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"numaio/internal/core"
	"numaio/internal/device"
	"numaio/internal/fio"
	"numaio/internal/numa"
	"numaio/internal/topology"
	"numaio/internal/units"
)

func main() {
	sys, err := numa.NewSystem(topology.DL585G7())
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: the memcpy model tells us which nodes are interchangeable.
	characterizer, err := core.NewCharacterizer(sys, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	model, err := characterizer.Characterize(7, core.ModeRead)
	if err != nil {
		log.Fatal(err)
	}

	// Step 2: calibrate one measured RDMA_READ rate per class — one run per
	// class instead of one per node.
	runner := fio.NewRunner(sys)
	classRates := make(map[int]units.Bandwidth)
	for _, rep := range model.RepresentativeNodes() {
		cls, err := model.ClassOf(rep)
		if err != nil {
			log.Fatal(err)
		}
		run, err := runner.Run([]fio.Job{{
			Name: fmt.Sprintf("cal-class%d", cls.Rank), Engine: device.EngineRDMARead,
			Node: rep, NumJobs: 2, Size: 8 * units.GiB,
		}})
		if err != nil {
			log.Fatal(err)
		}
		classRates[cls.Rank] = run.Aggregate
		fmt.Printf("class %d (nodes %v): calibrated %.2f Gb/s\n",
			cls.Rank, cls.Nodes, run.Aggregate.Gbps())
	}

	// Step 3: predict and verify several multi-user mixes.
	mixes := []map[topology.NodeID]int{
		{2: 2, 0: 2}, // the paper's worked example
		{7: 1, 4: 3},
		{6: 2, 3: 2, 5: 2},
		{0: 1, 1: 1, 2: 1, 3: 1, 4: 1, 5: 1, 6: 1, 7: 1},
	}
	fmt.Println("\nmix (node:procs)                 predicted   measured   rel.err")
	format := func(mix map[topology.NodeID]int) string {
		var nodes []int
		for n := range mix {
			nodes = append(nodes, int(n))
		}
		sort.Ints(nodes)
		var parts []string
		for _, n := range nodes {
			parts = append(parts, fmt.Sprintf("%d:%d", n, mix[topology.NodeID(n)]))
		}
		return strings.Join(parts, " ")
	}
	for _, mix := range mixes {
		predicted, err := model.PredictCounts(mix, classRates)
		if err != nil {
			log.Fatal(err)
		}
		var jobs []fio.Job
		for n, c := range mix {
			jobs = append(jobs, fio.Job{
				Name: fmt.Sprintf("mix-n%d", int(n)), Engine: device.EngineRDMARead,
				Node: n, NumJobs: c, Size: 8 * units.GiB,
			})
		}
		measured, err := runner.Run(jobs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s %8.2f %10.2f %8.1f%%\n",
			format(mix), predicted.Gbps(), measured.Aggregate.Gbps(),
			core.RelativeError(predicted, measured.Aggregate)*100)
	}
}
