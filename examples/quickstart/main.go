// Quickstart: boot the simulated testbed, characterize the I/O node with
// the paper's memcpy methodology (Algorithm 1), inspect the performance
// classes, and predict a multi-user aggregate with Eq. 1 — the complete
// workflow of the paper in ~60 lines.
package main

import (
	"fmt"
	"log"

	"numaio/internal/core"
	"numaio/internal/numa"
	"numaio/internal/topology"
)

func main() {
	// The machine: HP DL585 G7 with a 40 GbE NIC and two SSDs on node 7.
	machine := topology.DL585G7()
	sys, err := numa.NewSystem(machine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sys.Hardware())

	// Algorithm 1: build both directional models of node 7 with memory
	// copies only — no I/O hardware involved.
	characterizer, err := core.NewCharacterizer(sys, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	for _, mode := range []core.Mode{core.ModeWrite, core.ModeRead} {
		model, err := characterizer.Characterize(7, mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("device %s model of node 7:\n", mode)
		for _, cls := range model.Classes {
			fmt.Printf("  class %d: nodes %v, %.1f–%.1f Gb/s (avg %.1f)\n",
				cls.Rank, cls.Nodes, cls.Min.Gbps(), cls.Max.Gbps(), cls.Avg.Gbps())
		}
		fmt.Printf("  -> benchmark only %v to cover all %d nodes (%.0f%% fewer runs)\n\n",
			model.RepresentativeNodes(), len(model.Samples), model.CostReduction()*100)

		if mode == core.ModeRead {
			// Eq. 1: half the accesses from node 2, half from node 0.
			predicted, err := model.Predict(map[topology.NodeID]float64{2: 0.5, 0: 0.5}, nil)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("Eq. 1 mixture estimate (50%% node 2, 50%% node 0): %.1f Gb/s of memcpy-level bandwidth\n",
				predicted.Gbps())
		}
	}
}
