// Client: drive the numaiod model-serving API end to end. The example
// hosts the service in-process on an ephemeral port (so it runs anywhere
// without a daemon already listening), then talks to it over real HTTP the
// way any remote client would: characterize a machine, observe the cache
// hit on the second request, fetch the model by fingerprint, predict a
// multi-user mix with Eq. 1, compare placement policies, run a link-failure
// what-if, and read the metrics.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"numaio/internal/service"
)

func main() {
	// A real deployment runs `numaiod -addr :8080` and clients point at
	// it; here the server lives in-process for a self-contained example.
	ts := httptest.NewServer(service.New(service.Config{}).Handler())
	defer ts.Close()
	fmt.Println("numaiod serving at", ts.URL)

	// 1. Characterize: the first request runs Algorithm 1 for every node
	// of the machine in both directions; cheap config for the example.
	const machineBody = `{"machine": "intel-4s4n", "config": {"repeats": 2}}`
	var char struct {
		Fingerprint   string  `json:"fingerprint"`
		Cached        bool    `json:"cached"`
		CostReduction float64 `json:"cost_reduction"`
	}
	post(ts.URL+"/v1/characterize", machineBody, &char)
	fmt.Printf("characterized: fingerprint %s, cached=%v, cost reduction %.0f%%\n",
		char.Fingerprint, char.Cached, 100*char.CostReduction)

	// 2. The identical request again: served from cache, no Algorithm 1.
	post(ts.URL+"/v1/characterize", machineBody, &char)
	fmt.Printf("repeated:      fingerprint %s, cached=%v\n", char.Fingerprint, char.Cached)

	// 3. The model is addressable by fingerprint alone.
	var model struct {
		Machine string `json:"machine"`
		Models  []struct {
			Target int `json:"target"`
			Mode   int `json:"mode"`
		} `json:"models"`
	}
	get(ts.URL+"/v1/models/"+char.Fingerprint, &model)
	fmt.Printf("cached model of %q holds %d directional models\n", model.Machine, len(model.Models))

	// 4. Eq. 1 prediction for a two-node 50/50 mix against node 0's
	// write model — by fingerprint, so nothing is re-characterized.
	var pred struct {
		PredictedGbps float64 `json:"predicted_gbps"`
	}
	post(ts.URL+"/v1/predict", fmt.Sprintf(
		`{"fingerprint": %q, "target": 0, "mode": "write", "mix": {"0": 0.5, "2": 0.5}}`,
		char.Fingerprint), &pred)
	fmt.Printf("predicted aggregate for mix {0: 50%%, 2: 50%%}: %.1f Gb/s\n", pred.PredictedGbps)

	// 5. Placement: compare every policy for 8 tasks on the device node.
	var place struct {
		Results []struct {
			Policy      string  `json:"policy"`
			Placement   []int   `json:"placement"`
			EstimateBPS float64 `json:"estimate_bps"`
			MeasuredBPS float64 `json:"measured_bps"`
		} `json:"results"`
	}
	post(ts.URL+"/v1/place",
		`{"machine": "intel-4s4n", "config": {"repeats": 2}, "target": 0, "tasks": 8, "evaluate": true}`,
		&place)
	for _, r := range place.Results {
		fmt.Printf("  %-15s nodes %v  measured %.1f Gb/s\n",
			r.Policy, r.Placement, r.MeasuredBPS/1e9)
	}

	// 6. What-if: halve the node0<->node3 QPI link and diff the models.
	var whatif struct {
		Results []struct {
			Mode         string `json:"mode"`
			ChangedNodes []int  `json:"changed_nodes"`
		} `json:"results"`
	}
	post(ts.URL+"/v1/whatif",
		`{"machine": "intel-4s4n", "config": {"repeats": 2}, "target": 3,
		  "degrade": [{"a": "node0", "b": "node3", "factor": 0.5}]}`,
		&whatif)
	for _, r := range whatif.Results {
		fmt.Printf("whatif %s model: class changes on nodes %v\n", r.Mode, r.ChangedNodes)
	}

	// 7. Metrics: request counters and cache hits accumulated above.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("metrics excerpt:")
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "numaiod_requests_total") ||
			strings.HasPrefix(line, "numaiod_model_cache{") {
			fmt.Println(" ", line)
		}
	}
}

func post(url, body string, into any) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	decode(url, resp, into)
}

func get(url string, into any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	decode(url, resp, into)
}

func decode(url string, resp *http.Response, into any) {
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: HTTP %d: %s", url, resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, into); err != nil {
		log.Fatalf("%s: %v", url, err)
	}
}
