// Scheduler: apply the characterized models to I/O task placement
// (Sec. V-B and the paper's future-work thread migration). Compares the
// naive local-only binding against hop-distance, blind round-robin and the
// model-driven class-balanced policy, then rebalances a running workload
// when new tasks arrive.
package main

import (
	"fmt"
	"log"

	"numaio/internal/core"
	"numaio/internal/device"
	"numaio/internal/numa"
	"numaio/internal/sched"
	"numaio/internal/topology"
	"numaio/internal/units"
)

func main() {
	sys, err := numa.NewSystem(topology.DL585G7())
	if err != nil {
		log.Fatal(err)
	}
	characterizer, err := core.NewCharacterizer(sys, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	write, err := characterizer.Characterize(7, core.ModeWrite)
	if err != nil {
		log.Fatal(err)
	}
	read, err := characterizer.Characterize(7, core.ModeRead)
	if err != nil {
		log.Fatal(err)
	}
	scheduler, err := sched.New(sys, write, read)
	if err != nil {
		log.Fatal(err)
	}

	// Eight concurrent TCP senders: where should they run?
	fmt.Println("8 TCP send streams to the NIC on node 7:")
	cmp, err := scheduler.Compare(device.EngineTCPSend, 8, 8*units.GiB)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range []sched.Policy{sched.LocalOnly, sched.HopDistance, sched.RoundRobin, sched.ClassBalanced} {
		placement, err := scheduler.Place(device.EngineTCPSend, 8, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-15s %6.2f Gb/s  placement %v\n",
			p.String(), cmp.Aggregate[p].Gbps(), placement)
	}

	// Staging copies toward node 7: the locality-vs-contention sweep.
	scheduler.Tolerance = 0.15
	points, err := scheduler.Sweep(device.EngineMemcpy, 6, 4*units.GiB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmemcpy staging toward node 7 (local-only vs class-balanced):")
	for _, pt := range points {
		fmt.Printf("  %d tasks: local %6.2f  spread %6.2f Gb/s\n",
			pt.Tasks, pt.LocalOnly.Gbps(), pt.ClassBalanced.Gbps())
	}
	fmt.Printf("  spreading wins from %d tasks on\n", sched.Crossover(points))

	// Ask the model for advice without running anything: the analytic
	// estimator generalizes Eq. 1 to whole placements.
	advice, err := scheduler.BestPlacement(device.EngineTCPSend, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmodel advice for 8 TCP streams: %v (estimated %.2f Gb/s)\n",
		advice.Policy, advice.Estimate.Gbps())
	for _, p := range []sched.Policy{sched.LocalOnly, sched.HopDistance, sched.RoundRobin, sched.ClassBalanced} {
		fmt.Printf("  estimate %-15s %6.2f Gb/s\n", p.String(), advice.PerPolicy[p].Gbps())
	}

	// A running placement grows by two tasks: migrate minimally.
	current, err := scheduler.Place(device.EngineRDMAWrite, 4, sched.LocalOnly)
	if err != nil {
		log.Fatal(err)
	}
	next, moves, err := scheduler.Rebalance(device.EngineRDMAWrite, current, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrebalance %v + 2 new tasks -> %v\n", current, next)
	for _, mv := range moves {
		fmt.Printf("  migrate task %d: node %d -> node %d\n", mv.Task, int(mv.From), int(mv.To))
	}
}
