// Datamover: the paper's motivating data-intensive application, end to end.
// A fleet of mover tasks reads from the PCIe SSDs and simultaneously ships
// the data through the 40 GbE NIC. Each mover is throttled by its weaker
// I/O leg — and the legs follow different models (device read vs device
// write), so good placement needs both halves of the characterization.
package main

import (
	"fmt"
	"log"

	"numaio/internal/core"
	"numaio/internal/numa"
	"numaio/internal/sched"
	"numaio/internal/topology"
	"numaio/internal/workload"
)

func main() {
	sys, err := numa.NewSystem(topology.DL585G7())
	if err != nil {
		log.Fatal(err)
	}

	// Characterize once, with memory copies only (Algorithm 1).
	characterizer, err := core.NewCharacterizer(sys, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	write, err := characterizer.Characterize(7, core.ModeWrite)
	if err != nil {
		log.Fatal(err)
	}
	read, err := characterizer.Characterize(7, core.ModeRead)
	if err != nil {
		log.Fatal(err)
	}
	scheduler, err := sched.New(sys, write, read)
	if err != nil {
		log.Fatal(err)
	}

	spec := workload.Spec{Movers: 8}
	place, err := workload.Placement(scheduler, spec, spec.Movers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model-driven mover placement: %v\n", place)
	fmt.Println("(intersection of the read-eligible and send-eligible node sets —")
	fmt.Println(" the starved nodes {2,3} (send) and {4} (read) are excluded)")

	local, model, err := workload.Compare(sys, scheduler, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-14s %12s %12s %12s\n", "placement", "read Gb/s", "send Gb/s", "pipeline")
	fmt.Printf("%-14s %12.2f %12.2f %12.2f\n", "all-local",
		local.ReadAggregate.Gbps(), local.SendAggregate.Gbps(), local.Throughput.Gbps())
	fmt.Printf("%-14s %12.2f %12.2f %12.2f\n", "model-driven",
		model.ReadAggregate.Gbps(), model.SendAggregate.Gbps(), model.Throughput.Gbps())
	gain := (model.Throughput.Gbps()/local.Throughput.Gbps() - 1) * 100
	fmt.Printf("\npipeline gain from model-driven placement: %+.0f%%\n", gain)
}
