// Calibrate: the real-host bridge, end to end. In production you would run
// the paper's Algorithm 1 on actual hardware; here a "reference host"
// stands in for it. Its measured write/read models calibrate a machine that
// starts from the vendor's uniform wiring — and the fitted machine then
// answers questions offline (what-if, scheduling, predictions) without
// touching the reference host again.
package main

import (
	"fmt"
	"log"

	"numaio/internal/calibrate"
	"numaio/internal/core"
	"numaio/internal/numa"
	"numaio/internal/topology"
)

func main() {
	// Step 1: "measure" the reference host (Algorithm 1 in both directions).
	reference, err := numa.NewSystem(topology.DL585G7())
	if err != nil {
		log.Fatal(err)
	}
	characterizer, err := core.NewCharacterizer(reference, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	write, err := characterizer.Characterize(7, core.ModeWrite)
	if err != nil {
		log.Fatal(err)
	}
	read, err := characterizer.Characterize(7, core.ModeRead)
	if err != nil {
		log.Fatal(err)
	}

	// Step 2: fit a simulated machine, starting from the vendor wiring.
	base := topology.MagnyCours4P(topology.VariantA)
	fitted, report, err := calibrate.Fit(base, 7, write.Samples, read.Samples,
		calibrate.Options{MaxIterations: 120, Tolerance: 0.03})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fit: %d iterations, max error %.1f%%, converged=%v\n",
		report.Iterations, report.MaxRelErr*100, report.Converged)

	// Step 3: the fitted machine reproduces the reference's class
	// structure, so every downstream tool now works offline.
	sys, err := numa.NewSystem(fitted)
	if err != nil {
		log.Fatal(err)
	}
	c2, err := core.NewCharacterizer(sys, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	for _, mode := range []core.Mode{core.ModeWrite, core.ModeRead} {
		want, err := characterizer.Characterize(7, mode)
		if err != nil {
			log.Fatal(err)
		}
		got, err := c2.Characterize(7, mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s model classes (reference vs fitted):\n", mode)
		for i := 0; i < len(want.Classes) && i < len(got.Classes); i++ {
			fmt.Printf("  class %d: %v  vs  %v\n",
				i+1, want.Classes[i].Nodes, got.Classes[i].Nodes)
		}
	}
}
