module numaio

go 1.22
