# numaio — build / test / reproduce targets.

GO ?= go

.PHONY: all build vet lint test race cover bench bench-check bench-paper experiments examples serve-smoke fleet-smoke scenario trace-demo clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Local mirror of the CI lint job; staticcheck runs only if installed
# (CI pins and installs its own copy).
lint: vet
	test -z "$$(gofmt -l .)"
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "lint: staticcheck not installed, skipping"; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full-suite coverage profile with the recorded floor (scripts/cover.sh).
cover:
	sh scripts/cover.sh

# Hot-path microbenchmarks with a fixed -benchtime; records the results as
# BENCH_<rev>.{txt,json} for the speedup trajectory (docs/PERFORMANCE.md).
bench:
	sh scripts/bench.sh

# Fail on a >25% hot-path slowdown against the latest recorded BENCH_*.json.
bench-check:
	sh scripts/bench.sh -check

# One benchmark per paper table/figure (custom metrics carry the Gb/s).
bench-paper:
	$(GO) test -bench=. -benchmem .

# Regenerate the paper-vs-measured document.
experiments:
	$(GO) run ./cmd/paperbench -md > EXPERIMENTS.md

# Smoke-run every example.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/topology
	$(GO) run ./examples/multiuser
	$(GO) run ./examples/scheduler
	$(GO) run ./examples/datamover
	$(GO) run ./examples/cluster
	$(GO) run ./examples/calibrate
	$(GO) run ./examples/client

# Boot numaiod on an ephemeral port, curl the API, SIGTERM, verify drain.
serve-smoke:
	sh scripts/serve-smoke.sh

# Boot 3 numaiod replicas behind a numaiogw gateway, exercise sharded
# routing, fleet placement and hot-model replication, kill the owning
# replica and verify degraded serving, then drain (docs/FLEET.md).
fleet-smoke:
	sh scripts/fleet-smoke.sh

# Run the declarative scenario matrix (suites/*.json) as the CI gate does;
# writes scenario-junit.xml and scenario-summary.md. Quick grid by default,
# SCENARIO_FULL=1 for the suites' full repeat counts (docs/SCENARIOS.md).
scenario:
	sh scripts/scenario-ci.sh

# Record a whole-host characterization as Chrome trace-event JSON and print
# the per-stage breakdown; open trace-demo.json in https://ui.perfetto.dev
# or chrome://tracing (docs/OBSERVABILITY.md).
trace-demo:
	$(GO) run ./cmd/iomodel -machine dl585g7 -mode both -parallelism 4 \
		-trace trace-demo.json -stage-report

clean:
	$(GO) clean ./...
