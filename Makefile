# numaio — build / test / reproduce targets.

GO ?= go

.PHONY: all build vet test race cover bench bench-paper experiments examples serve-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Hot-path microbenchmarks with a fixed -benchtime; records the results as
# BENCH_<rev>.{txt,json} for the speedup trajectory (docs/PERFORMANCE.md).
bench:
	sh scripts/bench.sh

# One benchmark per paper table/figure (custom metrics carry the Gb/s).
bench-paper:
	$(GO) test -bench=. -benchmem .

# Regenerate the paper-vs-measured document.
experiments:
	$(GO) run ./cmd/paperbench -md > EXPERIMENTS.md

# Smoke-run every example.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/topology
	$(GO) run ./examples/multiuser
	$(GO) run ./examples/scheduler
	$(GO) run ./examples/datamover
	$(GO) run ./examples/cluster
	$(GO) run ./examples/calibrate
	$(GO) run ./examples/client

# Boot numaiod on an ephemeral port, curl the API, SIGTERM, verify drain.
serve-smoke:
	sh scripts/serve-smoke.sh

clean:
	$(GO) clean ./...
